/**
 * @file
 * Boundary grid and determinism sweep of the blocked integer serving
 * kernel (serve/packed_exec.h, `gemm`/`gemmBlock`):
 *
 *  - ragged shapes (columns not a multiple of the macro-/micro-block,
 *    rows not a multiple of the k-panel),
 *  - all-pruned macro-blocks, outlier-free and outlier-dense rows,
 *  - every inlierBits x actBits combination, driven to the int32
 *    overflow-safety bound with adversarial exponent spreads and
 *    max-magnitude codes (including the scalar-fallback path for
 *    spreads the bound rejects),
 *  - bit-identical outputs across every 2D tile partition and across
 *    MSQ_THREADS in {1, 2, 8} through the serving engine.
 *
 * Everything is diffed against the scalar oracle `referenceGemm` (in
 * turn bit-identical to dequantAll() + float GEMM, see test_serve.cc)
 * and against the dequantized float GEMM directly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "accel/int_dequant.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/microscopiq.h"
#include "serve/engine.h"
#include "serve/packed_exec.h"
#include "serve/weight_cache.h"

namespace msq {
namespace {

Matrix
fmWeights(size_t k, size_t o, Rng &rng, double outlier_rate)
{
    Matrix w(k, o);
    for (size_t r = 0; r < k; ++r) {
        for (size_t c = 0; c < o; ++c) {
            double v = rng.gaussian(0.0, 0.02);
            if (rng.bernoulli(outlier_rate))
                v = rng.uniform(0.15, 0.5) * (rng.bernoulli(0.5) ? 1 : -1);
            w(r, c) = v;
        }
    }
    return w;
}

Matrix
randomActs(size_t k, size_t tokens, Rng &rng)
{
    Matrix x(k, tokens);
    for (size_t r = 0; r < k; ++r)
        for (size_t t = 0; t < tokens; ++t)
            x(r, t) = rng.gaussian(0.0, 1.0);
    return x;
}

void
expectBitIdentical(const Matrix &got, const Matrix &want)
{
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    for (size_t r = 0; r < got.rows(); ++r)
        for (size_t c = 0; c < got.cols(); ++c)
            ASSERT_EQ(got(r, c), want(r, c))
                << "mismatch at (" << r << "," << c << ")";
}

void
expectUlpClose(const Matrix &got, const Matrix &want)
{
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    const double tol = std::max(want.maxAbs(), 1.0) * 1e-12;
    for (size_t r = 0; r < got.rows(); ++r)
        for (size_t c = 0; c < got.cols(); ++c)
            ASSERT_NEAR(got(r, c), want(r, c), tol)
                << "mismatch at (" << r << "," << c << ")";
}

/**
 * Check every execution path of one (plan, acts) pair: the blocked
 * kernel against the scalar oracle and the dequantized float GEMM,
 * plus bit-identity of gemm under ragged 2D tile partitions.
 */
void
expectKernelAgrees(const PackedLayer &layer, const PackedExecPlan &plan,
                   const Matrix &x, unsigned act_bits, size_t act_group)
{
    const QuantizedActs acts(x, act_bits, act_group);
    const size_t tokens = acts.tokens();
    const size_t cols = plan.cols();

    const Matrix oracle = plan.referenceGemm(acts);
    const Matrix blocked = plan.gemm(acts);
    expectUlpClose(blocked, oracle);
    expectUlpClose(blocked, layer.dequantAll().transposedMatmul(
                                acts.dequantAll()));

    // Ragged 2D partitions must reproduce the full call bit for bit.
    const size_t csplit[] = {0, std::min<size_t>(17, cols), cols};
    const size_t tsplit[] = {0, std::min<size_t>(3, tokens), tokens};
    Matrix tiled(cols, tokens);
    for (size_t ci = 0; ci + 1 < 3; ++ci)
        for (size_t ti = 0; ti + 1 < 3; ++ti)
            plan.gemmBlock(acts, csplit[ci], csplit[ci + 1], tsplit[ti],
                           tsplit[ti + 1], tiled);
    expectBitIdentical(tiled, blocked);
}

/** Quantize and run the full agreement check. */
void
quantizeAndCheck(const MsqConfig &cfg, const Matrix &w, const Matrix &x,
                 unsigned act_bits, size_t act_group)
{
    MicroScopiQQuantizer quantizer(cfg);
    const PackedLayer layer = quantizer.quantizePacked(w, Matrix());
    const PackedExecPlan plan(layer);
    expectKernelAgrees(layer, plan, x, act_bits, act_group);
}

TEST(PackedKernel, RaggedShapeGrid)
{
    // Columns straddling macro- and micro-block boundaries, rows
    // below, at, and straddling the k-panel height (128): every
    // combination must agree with both references.
    const size_t rows_grid[] = {16, 53, 64, 128, 130};
    const size_t cols_grid[] = {8, 97, 96, 100};
    uint64_t seed = 100;
    for (size_t rows : rows_grid) {
        for (size_t cols : cols_grid) {
            MsqConfig cfg;
            cfg.macroBlock = 32;
            cfg.microBlock = 8;
            cfg.hessianCompensation = false;
            Rng rng(++seed);
            const Matrix w = fmWeights(rows, cols, rng, 0.05);
            const Matrix x = randomActs(rows, 9, rng);
            quantizeAndCheck(cfg, w, x, 8, 32);
        }
    }
}

TEST(PackedKernel, AllPrunedMacroBlocksAreSkipped)
{
    // Columns 32..63 are identically zero: their (panel, MaB) tiles
    // must be classified Zero and skipped, without changing outputs.
    MsqConfig cfg;
    cfg.macroBlock = 32;
    cfg.microBlock = 8;
    cfg.outlierMode = OutlierMode::None;
    cfg.hessianCompensation = false;
    Rng rng(7);
    Matrix w = fmWeights(96, 96, rng, 0.0);
    for (size_t r = 0; r < w.rows(); ++r)
        for (size_t c = 32; c < 64; ++c)
            w(r, c) = 0.0;

    MicroScopiQQuantizer quantizer(cfg);
    const PackedLayer layer = quantizer.quantizePacked(w, Matrix());
    const PackedExecPlan plan(layer);
    EXPECT_GE(plan.blockStats().zeroTiles,
              (96 + plan.panelRows() - 1) / plan.panelRows());
    const Matrix x = randomActs(96, 5, rng);
    expectKernelAgrees(layer, plan, x, 8, 32);

    // The zeroed stripe's outputs are exactly zero.
    const QuantizedActs acts(x, 8, 32);
    const Matrix out = plan.gemm(acts);
    for (size_t c = 32; c < 64; ++c)
        for (size_t t = 0; t < out.cols(); ++t)
            EXPECT_EQ(out(c, t), 0.0);
}

TEST(PackedKernel, OutlierFreeAndOutlierDenseRows)
{
    // Even k-rows carry no outliers at all; odd k-rows mix the tight
    // inlier distribution with rare huge values the 3-sigma detector
    // flags, so outlier-free and outlier-carrying rows interleave
    // within every k-panel.
    MsqConfig cfg;
    cfg.macroBlock = 32;
    cfg.microBlock = 8;
    cfg.hessianCompensation = false;
    Rng rng(21);
    Matrix w(64, 64);
    for (size_t r = 0; r < w.rows(); ++r) {
        for (size_t c = 0; c < w.cols(); ++c) {
            if (r % 2 == 0) {
                w(r, c) = rng.gaussian(0.0, 0.02);
            } else {
                const bool big = rng.bernoulli(0.1);
                w(r, c) = big ? rng.uniform(0.5, 1.5) *
                                    (rng.bernoulli(0.5) ? 1 : -1)
                              : rng.gaussian(0.0, 0.02);
            }
        }
    }
    MicroScopiQQuantizer quantizer(cfg);
    const PackedLayer layer = quantizer.quantizePacked(w, Matrix());
    const PackedExecPlan plan(layer);
    EXPECT_GT(plan.outlierCount(), 40u);
    const Matrix x = randomActs(64, 6, rng);
    expectKernelAgrees(layer, plan, x, 8, 16);
}

/**
 * Weights whose per-row magnitude walks an exponent ramp: row k is
 * scaled by 2^(k % modulus), so Isf within a 64-row k-panel spreads by
 * up to modulus - 1. Codes saturate at max magnitude, which together
 * with max-magnitude activations drives the int32 accumulators toward
 * the maxPanelShift() bound.
 */
Matrix
rampWeights(size_t rows, size_t cols, int modulus, Rng &rng)
{
    Matrix w(rows, cols);
    for (size_t r = 0; r < rows; ++r) {
        const double scale = std::ldexp(1.0, static_cast<int>(r) % modulus);
        for (size_t c = 0; c < cols; ++c)
            w(r, c) = scale * (rng.bernoulli(0.5) ? 1.0 : -1.0);
    }
    return w;
}

/** Max-magnitude activations (codes saturate at +/- qmax). */
Matrix
saturatedActs(size_t rows, size_t tokens, Rng &rng)
{
    Matrix x(rows, tokens);
    for (size_t r = 0; r < rows; ++r)
        for (size_t t = 0; t < tokens; ++t)
            x(r, t) = 8.0 * (rng.bernoulli(0.5) ? 1.0 : -1.0);
    return x;
}

class OverflowBoundGrid
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

/** The plan's k-panel height, probed from a minimal decoded layer. */
size_t
probePanelRows()
{
    MsqConfig cfg;
    cfg.macroBlock = 8;
    cfg.microBlock = 8;
    cfg.outlierMode = OutlierMode::None;
    cfg.hessianCompensation = false;
    Matrix w(8, 8, 0.5);
    MicroScopiQQuantizer q(cfg);
    return PackedExecPlan(q.quantizePacked(w, Matrix())).panelRows();
}

TEST_P(OverflowBoundGrid, IntTilesNearTheBound)
{
    // Exponent spread just inside the int32 bound: every tile must
    // stay on the integer path and still match both references.
    const auto [bb, ab] = GetParam();
    MsqConfig cfg;
    cfg.inlierBits = bb;
    cfg.macroBlock = 32;
    cfg.microBlock = 8;
    cfg.outlierMode = OutlierMode::None;
    cfg.hessianCompensation = false;

    const int bound =
        std::min(maxPanelShift(bb, 8, probePanelRows()),
                 14 - static_cast<int>(bb - 1));
    ASSERT_GE(bound, 10);
    Rng rng(900 + bb * 10 + ab);
    const Matrix w = rampWeights(128, 64, bound + 1, rng);
    const Matrix x = saturatedActs(128, 7, rng);

    MicroScopiQQuantizer quantizer(cfg);
    const PackedLayer layer = quantizer.quantizePacked(w, Matrix());
    const PackedExecPlan plan(layer);
    EXPECT_GT(plan.blockStats().intTiles, 0u);
    EXPECT_EQ(plan.blockStats().scalarTiles, 0u);
    expectKernelAgrees(layer, plan, x, ab, 32);
}

TEST_P(OverflowBoundGrid, ScalarFallbackAboveTheBound)
{
    // Exponent spread far beyond the bound: tiles must fall back to
    // the exact scalar path — and still match both references.
    const auto [bb, ab] = GetParam();
    MsqConfig cfg;
    cfg.inlierBits = bb;
    cfg.macroBlock = 32;
    cfg.microBlock = 8;
    cfg.outlierMode = OutlierMode::None;
    cfg.hessianCompensation = false;

    Rng rng(1700 + bb * 10 + ab);
    const Matrix w = rampWeights(96, 48, 40, rng);
    const Matrix x = saturatedActs(96, 5, rng);

    MicroScopiQQuantizer quantizer(cfg);
    const PackedLayer layer = quantizer.quantizePacked(w, Matrix());
    const PackedExecPlan plan(layer);
    EXPECT_GT(plan.blockStats().scalarTiles, 0u);
    expectKernelAgrees(layer, plan, x, ab, 32);
}

INSTANTIATE_TEST_SUITE_P(
    BitsGrid, OverflowBoundGrid,
    ::testing::Combine(::testing::Values(2u, 4u),
                       ::testing::Values(2u, 4u, 8u)));

TEST(PackedKernel, BlockStatsCoverThePlane)
{
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    Rng rng(31);
    const Matrix w = fmWeights(130, 300, rng, 0.04);
    MicroScopiQQuantizer quantizer(cfg);
    const PackedExecPlan plan(quantizer.quantizePacked(w, Matrix()));
    const auto &stats = plan.blockStats();
    const size_t panels =
        (130 + plan.panelRows() - 1) / plan.panelRows();
    const size_t mbs = (300 + cfg.macroBlock - 1) / cfg.macroBlock;
    EXPECT_EQ(stats.intTiles + stats.scalarTiles + stats.zeroTiles,
              panels * mbs);
    EXPECT_GT(stats.intTiles, 0u);
}

TEST(PackedKernel, TilePartitionSweepIsBitStable)
{
    // A dense sweep over tile shapes — token widths, aligned and
    // unaligned column widths — must reproduce gemm() bit for bit.
    MsqConfig cfg;
    cfg.macroBlock = 32;
    cfg.microBlock = 8;
    cfg.hessianCompensation = false;
    Rng rng(47);
    const Matrix w = fmWeights(130, 100, rng, 0.05);
    const Matrix x = randomActs(130, 23, rng);
    MicroScopiQQuantizer quantizer(cfg);
    const PackedExecPlan plan(quantizer.quantizePacked(w, Matrix()));
    const QuantizedActs acts(x, 8, 32);
    const Matrix full = plan.gemm(acts);

    const size_t col_widths[] = {1, 7, 32, 33, 100};
    const size_t tok_widths[] = {1, 5, 23};
    for (size_t cw : col_widths) {
        for (size_t tw : tok_widths) {
            Matrix tiled(100, 23);
            for (size_t c0 = 0; c0 < 100; c0 += cw)
                for (size_t t0 = 0; t0 < 23; t0 += tw)
                    plan.gemmBlock(acts, c0, std::min<size_t>(100, c0 + cw),
                                   t0, std::min<size_t>(23, t0 + tw),
                                   tiled);
            expectBitIdentical(tiled, full);
        }
    }
}

/** A tiny hermetic profile so engine-level sweeps stay fast. */
ModelProfile
tinyModel()
{
    ModelProfile p;
    p.name = "tiny-kernel-test";
    p.kind = ModelKind::Llm;
    p.layers = {{"proj_a", 64, 96}, {"proj_b", 96, 64}};
    p.weights = {0.02, 8.0, 0.02, 0.001, 6.0, 14.0};
    p.acts = {1.0, 0.02, 8.0};
    p.fpMetric = 6.0;
    p.seed = 43;
    return p;
}

TEST(PackedKernel, EngineChecksumsInvariantAcrossThreadsAndTiles)
{
    // The determinism contract, end to end: request output checksums
    // must be bit-identical across MSQ_THREADS in {1, 2, 8} and across
    // tile shapes (token-only, narrow 2D, auto 2D partitions).
    clearPackedModelCache();
    const ModelProfile model = tinyModel();
    MsqConfig cfg;
    cfg.hessianCompensation = false;

    const unsigned thread_grid[] = {1, 2, 8};
    const size_t tile_tokens_grid[] = {2, 16};
    const size_t tile_cols_grid[] = {0, 32, 1 << 20};

    std::vector<double> want;
    for (unsigned threads : thread_grid) {
        for (size_t tile_tokens : tile_tokens_grid) {
            for (size_t tile_cols : tile_cols_grid) {
                setThreadCount(threads);
                ServeConfig scfg;
                scfg.maxBatchRequests = 8;
                scfg.tileTokens = tile_tokens;
                scfg.tileCols = tile_cols;
                ServeEngine engine(model, cfg, scfg);
                for (uint64_t r = 0; r < 6; ++r)
                    engine.submit(3 + r % 4, 700 + r);
                std::vector<double> got;
                for (const RequestRecord &rec : engine.drain().requests)
                    got.push_back(rec.outputCheck);
                if (want.empty()) {
                    want = got;
                    ASSERT_EQ(want.size(), 6u);
                } else {
                    ASSERT_EQ(got.size(), want.size());
                    for (size_t i = 0; i < got.size(); ++i)
                        EXPECT_EQ(got[i], want[i])
                            << "threads=" << threads
                            << " tileTokens=" << tile_tokens
                            << " tileCols=" << tile_cols << " req " << i;
                }
            }
        }
    }
    setThreadCount(0);
    clearPackedModelCache();
}

TEST(PackedKernel, MaxPanelShiftBound)
{
    // The derivation in accel/int_dequant.h, spot-checked: the worst
    // case magnitude at the returned shift fits int32, one more
    // doubling may not.
    const unsigned bb = 4;
    const unsigned ab = 8;
    const size_t panel = 64;
    const int s = maxPanelShift(bb, ab, panel);
    ASSERT_GT(s, 0);
    const double worst = static_cast<double>(panel) *
                         std::ldexp(1.0, static_cast<int>(bb) - 1 + s) *
                         std::ldexp(1.0, static_cast<int>(ab) - 1);
    EXPECT_LE(worst, 2147483647.0);
    EXPECT_GT(2.0 * worst, 1073741824.0);

    // Monotonicity in each argument.
    EXPECT_LT(maxPanelShift(4, 8, 64), maxPanelShift(2, 8, 64));
    EXPECT_LT(maxPanelShift(4, 8, 64), maxPanelShift(4, 4, 64));
    EXPECT_LT(maxPanelShift(4, 8, 128), maxPanelShift(4, 8, 64));
}

} // namespace
} // namespace msq
