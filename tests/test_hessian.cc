/**
 * @file
 * Tests for the Hessian machinery and the GPTQ sweep: H construction,
 * damping, inverse correctness, and the property that Hessian
 * compensation reduces the *output* error of quantization even when the
 * weight error grows.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.h"
#include "quant/gptq.h"
#include "quant/hessian.h"
#include "quant/quant_util.h"
#include "quant/rtn.h"

namespace msq {
namespace {

Matrix
randomMatrix(size_t r, size_t c, Rng &rng, double sigma = 1.0)
{
    Matrix m(r, c);
    for (size_t i = 0; i < r; ++i)
        for (size_t j = 0; j < c; ++j)
            m(i, j) = rng.gaussian(0.0, sigma);
    return m;
}

TEST(Hessian, Symmetry)
{
    Rng rng(2);
    const Matrix x = randomMatrix(12, 40, rng);
    const Matrix h = buildHessian(x, 0.01);
    for (size_t i = 0; i < h.rows(); ++i)
        for (size_t j = 0; j < h.cols(); ++j)
            EXPECT_DOUBLE_EQ(h(i, j), h(j, i));
}

TEST(Hessian, MatchesDefinition)
{
    Rng rng(3);
    const Matrix x = randomMatrix(6, 30, rng);
    const Matrix h = buildHessian(x, 0.0);
    // H = 2 X X^T exactly when damping is zero.
    for (size_t i = 0; i < 6; ++i) {
        for (size_t j = 0; j < 6; ++j) {
            double acc = 0.0;
            for (size_t t = 0; t < 30; ++t)
                acc += x(i, t) * x(j, t);
            EXPECT_NEAR(h(i, j), 2.0 * acc, 1e-9);
        }
    }
}

TEST(Hessian, DampingKeepsInvertibleWithDeadChannels)
{
    Rng rng(4);
    Matrix x = randomMatrix(8, 20, rng);
    // Kill two input channels entirely.
    for (size_t t = 0; t < 20; ++t) {
        x(3, t) = 0.0;
        x(6, t) = 0.0;
    }
    const Matrix hinv = hessianInverseFromCalib(x, 0.01);
    for (size_t i = 0; i < 8; ++i)
        EXPECT_GT(hinv(i, i), 0.0);
}

TEST(Hessian, InverseIsInverse)
{
    Rng rng(5);
    const Matrix x = randomMatrix(10, 64, rng);
    const Matrix h = buildHessian(x, 0.01);
    const Matrix hinv = invertHessian(h);
    const Matrix prod = h.matmul(hinv);
    for (size_t i = 0; i < 10; ++i)
        for (size_t j = 0; j < 10; ++j)
            EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-7);
}

TEST(GptqSweep, IdentityQuantizerIsLossless)
{
    Rng rng(6);
    Matrix w = randomMatrix(16, 8, rng);
    const Matrix x = randomMatrix(16, 64, rng);
    const Matrix hinv_chol = hessianInverseCholesky(x);

    Matrix work = w;
    Matrix out;
    gptqSweep(work, hinv_chol, 4,
              [](size_t, const std::vector<double> &v) { return v; }, out);
    // Quantizing to the exact same values must return the original
    // weights untouched (errors are all zero).
    for (size_t r = 0; r < w.rows(); ++r)
        for (size_t c = 0; c < w.cols(); ++c)
            EXPECT_NEAR(out(r, c), w(r, c), 1e-9);
}

TEST(GptqSweep, CompensationReducesOutputError)
{
    // The defining property of GPTQ: for the same per-row quantizer, the
    // Hessian-compensated result has lower output error || (W-Q)^T X ||
    // than plain RTN.
    Rng rng(7);
    const size_t k = 64, o = 32, n = 128;
    const Matrix w = randomMatrix(k, o, rng, 0.05);
    const Matrix x = randomMatrix(k, n, rng, 1.0);

    auto rtn_row = [](size_t, const std::vector<double> &v) {
        std::vector<double> q = v;
        symQuantSpan(q.data(), q.size(), 7);
        return q;
    };

    // Plain RTN (identity Hessian -> zero compensation terms would need
    // hinv offdiag = 0): emulate by quantizing each row of the original.
    Matrix rtn_out(k, o);
    for (size_t r = 0; r < k; ++r) {
        std::vector<double> row(w.rowPtr(r), w.rowPtr(r) + o);
        const std::vector<double> q = rtn_row(r, row);
        for (size_t c = 0; c < o; ++c)
            rtn_out(r, c) = q[c];
    }

    const Matrix hinv_chol = hessianInverseCholesky(x);
    Matrix work = w;
    Matrix gptq_out;
    gptqSweep(work, hinv_chol, 16, rtn_row, gptq_out);

    const Matrix ref = w.transposedMatmul(x);
    const double err_rtn = rtn_out.transposedMatmul(x).normalizedErrorTo(ref);
    const double err_gptq = gptq_out.transposedMatmul(x).normalizedErrorTo(ref);
    EXPECT_LT(err_gptq, err_rtn);
}

TEST(GptqQuantizer, BeatsRtnOnOutputError)
{
    Rng rng(8);
    const size_t k = 96, o = 48, n = 160;
    const Matrix w = randomMatrix(k, o, rng, 0.05);
    const Matrix x = randomMatrix(k, n, rng, 1.0);
    const Matrix ref = w.transposedMatmul(x);

    RtnQuantizer rtn(3, 32);
    GptqConfig cfg;
    cfg.bits = 3;
    cfg.groupSize = 32;
    cfg.blockSize = 32;
    GptqQuantizer gptq(cfg);

    const QuantResult qr = rtn.quantize(w, x);
    const QuantResult qg = gptq.quantize(w, x);
    const double err_rtn =
        qr.dequant.transposedMatmul(x).normalizedErrorTo(ref);
    const double err_gptq =
        qg.dequant.transposedMatmul(x).normalizedErrorTo(ref);
    EXPECT_LT(err_gptq, err_rtn);
}

TEST(GptqQuantizer, NamesAndEbw)
{
    GptqConfig cfg;
    cfg.bits = 4;
    GptqQuantizer q(cfg);
    EXPECT_EQ(q.name(), "GPTQ-W4");
    Rng rng(9);
    const Matrix w = randomMatrix(32, 16, rng, 0.05);
    const Matrix x = randomMatrix(32, 64, rng);
    const QuantResult res = q.quantize(w, x);
    EXPECT_GT(res.ebw, 4.0);
    EXPECT_LT(res.ebw, 5.0);
}

} // namespace
} // namespace msq
