/**
 * @file
 * Weight-cache keying and disk tier. The keying half is the ISSUE's
 * collision audit: every MsqConfig field (and the calibration budget)
 * must flow into the cache key, so two distinct deployments can never
 * alias one cache entry — in memory or on disk. The disk half drives
 * `getPackedModel` and the pipeline's packed-evaluation cache through
 * a real directory: quantize-and-write on the first pass, verified
 * bit-exact load on the second, graceful fallback (and self-heal) on a
 * corrupted or mismatched container.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <tuple>
#include <vector>

#include "core/microscopiq.h"
#include "io/msq_file.h"
#include "model/model_zoo.h"
#include "model/pipeline.h"
#include "serve/packed_exec.h"
#include "serve/weight_cache.h"

namespace msq {
namespace {

std::string
tmpDir()
{
    // gtest's TempDir ends with a separator.
    return ::testing::TempDir();
}

/** One single-field perturbation per MsqConfig member. */
std::vector<MsqConfig>
configPerturbations()
{
    std::vector<MsqConfig> all;
    all.emplace_back(); // baseline
    MsqConfig c;
    c.inlierBits = 4;
    all.push_back(c);
    c = MsqConfig{};
    c.macroBlock = 64;
    all.push_back(c);
    c = MsqConfig{};
    c.microBlock = 16;
    all.push_back(c);
    c = MsqConfig{};
    c.rowBlock = 64;
    all.push_back(c);
    c = MsqConfig{};
    c.dampRel = 0.02;
    all.push_back(c);
    c = MsqConfig{};
    c.dampRel = 0.010000000000000002; // one ulp-ish away from 0.01
    all.push_back(c);
    c = MsqConfig{};
    c.outlierMode = OutlierMode::None;
    all.push_back(c);
    c = MsqConfig{};
    c.outlierMode = OutlierMode::MxFpCoarse;
    all.push_back(c);
    c = MsqConfig{};
    c.prescaleOutliers = false;
    all.push_back(c);
    c = MsqConfig{};
    c.pruneAndRedistribute = false;
    all.push_back(c);
    c = MsqConfig{};
    c.hessianCompensation = false;
    all.push_back(c);
    return all;
}

TEST(ConfigKey, EveryFieldChangesTheKey)
{
    const std::vector<MsqConfig> configs = configPerturbations();
    for (size_t i = 0; i < configs.size(); ++i) {
        for (size_t j = 0; j < configs.size(); ++j) {
            if (i == j) {
                EXPECT_TRUE(configs[i] == configs[j]);
                EXPECT_EQ(configKey(configs[i]), configKey(configs[j]));
            } else {
                EXPECT_TRUE(configs[i] != configs[j])
                    << "perturbations " << i << " and " << j
                    << " compare equal";
                EXPECT_NE(configKey(configs[i]), configKey(configs[j]))
                    << "configs " << i << " and " << j
                    << " collide on key '" << configKey(configs[i]) << "'";
            }
        }
    }
}

TEST(ConfigKey, CacheFileNameSeparatesDeployments)
{
    const ModelProfile &model = modelByName("TinyLM");
    const ModelProfile &other = modelByName("LLaMA2-7B");
    std::vector<std::string> names;
    for (const MsqConfig &cfg : configPerturbations())
        names.push_back(packedModelCacheFile(model, cfg, 128));
    names.push_back(packedModelCacheFile(model, MsqConfig{}, 64));
    names.push_back(packedModelCacheFile(other, MsqConfig{}, 128));
    for (size_t i = 0; i < names.size(); ++i)
        for (size_t j = i + 1; j < names.size(); ++j)
            EXPECT_NE(names[i], names[j])
                << "deployments " << i << " and " << j
                << " share container '" << names[i] << "'";
}

TEST(WeightCacheDisk, QuantizeWriteThenLoadBitExact)
{
    const ModelProfile &model = modelByName("TinyLM");
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    const std::string dir = tmpDir() + "msq_wc_roundtrip";
    (void)std::remove(
        (dir + "/" + packedModelCacheFile(model, cfg, 32)).c_str());
    // The directory must exist; containers are files inside it.
    std::ignore = std::system(("mkdir -p " + dir).c_str());

    clearPackedModelCache();
    const PackedModelPtr built = getPackedModel(model, cfg, 32, dir);
    EXPECT_EQ(built->source, "quantize");
    const std::string path =
        dir + "/" + packedModelCacheFile(model, cfg, 32);
    std::ifstream probe(path, std::ios::binary);
    EXPECT_TRUE(probe.good()) << "container " << path << " was not written";

    clearPackedModelCache();
    const PackedModelPtr loaded = getPackedModel(model, cfg, 32, dir);
    EXPECT_EQ(loaded->source, "disk");
    ASSERT_EQ(loaded->layers.size(), built->layers.size());
    ASSERT_EQ(loaded->plans.size(), built->plans.size());
    EXPECT_EQ(loaded->termsPerToken, built->termsPerToken);
    EXPECT_EQ(loaded->meanEbw, built->meanEbw);
    for (size_t li = 0; li < built->layers.size(); ++li)
        EXPECT_EQ(loaded->layers[li].serialize(),
                  built->layers[li].serialize());

    // Within one process the memory tier still wins: same pointer.
    const PackedModelPtr again = getPackedModel(model, cfg, 32, dir);
    EXPECT_EQ(again.get(), loaded.get());
    clearPackedModelCache();
    std::remove(path.c_str());
}

TEST(WeightCacheDisk, CorruptContainerFallsBackAndHeals)
{
    const ModelProfile &model = modelByName("TinyLM");
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    const std::string dir = tmpDir() + "msq_wc_corrupt";
    std::ignore = std::system(("mkdir -p " + dir).c_str());
    const std::string path =
        dir + "/" + packedModelCacheFile(model, cfg, 32);

    clearPackedModelCache();
    const PackedModelPtr built = getPackedModel(model, cfg, 32, dir);
    EXPECT_EQ(built->source, "quantize");

    // Flip one byte in the middle of the container.
    {
        std::fstream f(path,
                       std::ios::binary | std::ios::in | std::ios::out);
        ASSERT_TRUE(f.good());
        f.seekg(0, std::ios::end);
        const std::streampos size = f.tellg();
        f.seekp(size / 2);
        char byte = 0;
        f.seekg(size / 2);
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0xFF);
        f.seekp(size / 2);
        f.write(&byte, 1);
    }

    clearPackedModelCache();
    const PackedModelPtr rebuilt = getPackedModel(model, cfg, 32, dir);
    EXPECT_EQ(rebuilt->source, "quantize"); // corrupt file is a miss
    for (size_t li = 0; li < built->layers.size(); ++li)
        EXPECT_EQ(rebuilt->layers[li].serialize(),
                  built->layers[li].serialize());

    // ...and the rebuild rewrote a valid container: next start loads.
    clearPackedModelCache();
    const PackedModelPtr healed = getPackedModel(model, cfg, 32, dir);
    EXPECT_EQ(healed->source, "disk");
    clearPackedModelCache();
    std::remove(path.c_str());
}

TEST(WeightCacheDisk, MismatchedIdentityIsAMiss)
{
    // A container whose embedded identity differs from the requested
    // deployment (here: same file name, different calibration budget)
    // must be re-quantized, not served.
    const ModelProfile &model = modelByName("TinyLM");
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    const std::string dir = tmpDir() + "msq_wc_mismatch";
    std::ignore = std::system(("mkdir -p " + dir).c_str());

    clearPackedModelCache();
    const PackedModelPtr built = getPackedModel(model, cfg, 32, dir);
    EXPECT_EQ(built->source, "quantize");
    const std::string path =
        dir + "/" + packedModelCacheFile(model, cfg, 32);

    // Rewrite the container under the *other* deployment's file name:
    // the loader must notice the identity mismatch inside the file.
    MsqModelFile file;
    ASSERT_TRUE(loadModel(path, file).ok());
    const std::string path48 =
        dir + "/" + packedModelCacheFile(model, cfg, 48);
    ASSERT_TRUE(saveModel(path48, file).ok()); // still says calib=32 inside

    clearPackedModelCache();
    const PackedModelPtr other = getPackedModel(model, cfg, 48, dir);
    EXPECT_EQ(other->source, "quantize");
    clearPackedModelCache();
    std::remove(path.c_str());
    std::remove(path48.c_str());
}

TEST(PipelineCache, PackedEvalCacheLeavesMetricsBitIdentical)
{
    const ModelProfile &model = modelByName("TinyLM");
    QuantMethod method;
    method.name = "MicroScopiQ";
    method.makeQuantizer = [] {
        MsqConfig c;
        c.hessianCompensation = false;
        return std::make_unique<MicroScopiQQuantizer>(c);
    };
    method.actBits = 8;
    method.actGroup = 32;

    const std::string dir = tmpDir() + "msq_pipeline_cache";
    std::ignore = std::system(("mkdir -p " + dir).c_str());
    std::ignore = std::system(("rm -f " + dir + "/*.msq").c_str());

    PipelineConfig plain;
    plain.calibTokens = 32;
    plain.evalTokens = 24;
    plain.packedExec = packedExecBackend();

    PipelineConfig cached = plain;
    cached.packedCacheDir = dir;

    // Reference run (no disk), then a cache-writing run, then a
    // cache-hitting run: all three must agree to the last bit.
    const ModelEvalResult ref = evaluateMethodOnModel(model, method, plain);
    const ModelEvalResult miss =
        evaluateMethodOnModel(model, method, cached);
    const ModelEvalResult hit = evaluateMethodOnModel(model, method, cached);

    EXPECT_EQ(ref.meanNmse, miss.meanNmse);
    EXPECT_EQ(ref.meanEbw, miss.meanEbw);
    EXPECT_EQ(ref.proxyPpl, miss.proxyPpl);
    EXPECT_EQ(miss.meanNmse, hit.meanNmse);
    EXPECT_EQ(miss.meanEbw, hit.meanEbw);
    EXPECT_EQ(miss.proxyPpl, hit.proxyPpl);

    // The miss run must have left a container behind.
    int containers = 0;
    FILE *ls = popen(("ls " + dir + "/*.msq 2>/dev/null | wc -l").c_str(),
                     "r");
    ASSERT_NE(ls, nullptr);
    ASSERT_EQ(fscanf(ls, "%d", &containers), 1);
    pclose(ls);
    EXPECT_EQ(containers, 1);
    std::ignore = std::system(("rm -rf " + dir).c_str());
}

TEST(PipelineCache, MigrationMethodsBypassTheCache)
{
    // Migration needs calibration statistics even on a hit, so such
    // methods must not write or read evaluation containers.
    const ModelProfile &model = modelByName("TinyLM");
    QuantMethod method;
    method.name = "MicroScopiQ+migration";
    method.makeQuantizer = [] {
        MsqConfig c;
        c.hessianCompensation = false;
        return std::make_unique<MicroScopiQQuantizer>(c);
    };
    method.migrationAlpha = 0.5;

    const std::string dir = tmpDir() + "msq_pipeline_nomig";
    std::ignore = std::system(("mkdir -p " + dir).c_str());
    std::ignore = std::system(("rm -f " + dir + "/*.msq").c_str());

    PipelineConfig cached;
    cached.calibTokens = 32;
    cached.evalTokens = 24;
    cached.packedExec = packedExecBackend();
    cached.packedCacheDir = dir;

    PipelineConfig plain = cached;
    plain.packedCacheDir.clear();

    const ModelEvalResult a = evaluateMethodOnModel(model, method, plain);
    const ModelEvalResult b = evaluateMethodOnModel(model, method, cached);
    EXPECT_EQ(a.meanNmse, b.meanNmse);
    EXPECT_EQ(a.proxyPpl, b.proxyPpl);

    FILE *ls = popen(("ls " + dir + "/*.msq 2>/dev/null | wc -l").c_str(),
                     "r");
    ASSERT_NE(ls, nullptr);
    int containers = -1;
    ASSERT_EQ(fscanf(ls, "%d", &containers), 1);
    pclose(ls);
    EXPECT_EQ(containers, 0);
    std::ignore = std::system(("rm -rf " + dir).c_str());
}

} // namespace
} // namespace msq
