/**
 * @file
 * Tests for 3-sigma outlier detection, adjacency statistics, and the
 * outlier half split/merge encoding.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/outlier.h"

namespace msq {
namespace {

TEST(DetectOutliers, FlagsExtremeValues)
{
    std::vector<double> v(100, 0.0);
    Rng rng(1);
    for (double &x : v)
        x = rng.gaussian(0.0, 0.01);
    v[17] = 1.0;
    v[42] = -1.0;
    const auto mask = detectOutliers(v.data(), v.size());
    EXPECT_TRUE(mask[17]);
    EXPECT_TRUE(mask[42]);
    size_t n = 0;
    for (bool b : mask)
        n += b;
    EXPECT_LE(n, 5u);
}

TEST(DetectOutliers, UniformSpanHasNone)
{
    std::vector<double> v(64, 0.5);
    const auto mask = detectOutliers(v.data(), v.size());
    for (bool b : mask)
        EXPECT_FALSE(b);
}

TEST(DetectOutliers, EmptySpan)
{
    const auto mask = detectOutliers(nullptr, 0);
    EXPECT_TRUE(mask.empty());
}

TEST(AnalyzeOutliers, CountsAdjacency)
{
    Rng rng(2);
    Matrix w(4, 128);
    for (size_t r = 0; r < 4; ++r)
        for (size_t c = 0; c < 128; ++c)
            w(r, c) = rng.gaussian(0.0, 0.01);
    // Row 0: isolated outlier. Row 1: adjacent pair.
    w(0, 10) = 1.0;
    w(1, 20) = 1.0;
    w(1, 21) = -1.0;

    const OutlierStats stats = analyzeOutliers(w, 128);
    EXPECT_GE(stats.outliers, 3u);
    EXPECT_GE(stats.adjacentOutliers, 2u);
    EXPECT_GT(stats.outlierFraction(), 0.0);
    EXPECT_GT(stats.adjacentFraction(), 0.0);
    EXPECT_LT(stats.adjacentFraction(), stats.outlierFraction() + 1e-12);
}

TEST(AnalyzeOutliers, AdjacencyDoesNotCrossBlockRows)
{
    Matrix w(2, 8, 0.01);
    // Outlier at the end of row 0 and the start of row 1: not adjacent.
    w(0, 7) = 1.0;
    w(1, 0) = 1.0;
    const OutlierStats stats = analyzeOutliers(w, 8);
    EXPECT_EQ(stats.adjacentOutliers, 0u);
}

} // namespace
} // namespace msq
