/**
 * @file
 * Cluster-tier suites: real fork/exec'd `model_server` replicas under a
 * ReplicaSupervisor (the binary path arrives as the MSQ_SERVER_BIN
 * compile definition), health probes over the Stats frame, routing
 * through the ClusterController, and the cross-process chaos test —
 * SIGKILL a loaded replica mid-stream and require every completed
 * client stream byte-identical to a fault-free in-process engine run,
 * zero dropped streams after drain, and the victim respawned and
 * serving again.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "cluster/controller.h"
#include "cluster/supervisor.h"
#include "model/model_zoo.h"
#include "net/client.h"
#include "net/frame.h"
#include "serve/clock.h"
#include "serve/decode.h"

#ifndef MSQ_SERVER_BIN
#error "tests/CMakeLists.txt must define MSQ_SERVER_BIN"
#endif

namespace msq {
namespace {

/** Mirror of examples/model_server.cpp's deployment geometry — the
 *  reference engine must share kv shape and vocab with the replicas
 *  (batch composition is free to differ: decode determinism). */
DecodeConfig
replicaDecodeConfig()
{
    DecodeConfig cfg;
    cfg.maxBatchSeqs = 4;
    cfg.stepTokenBudget = 32;
    cfg.prefillChunk = 8;
    cfg.kv = {2, 8, 8};
    cfg.vocab = 64;
    return cfg;
}

std::vector<uint32_t>
makePrompt(uint64_t seed, size_t len, size_t vocab)
{
    Rng rng(seed);
    std::vector<uint32_t> prompt(len);
    for (uint32_t &tok : prompt)
        tok = static_cast<uint32_t>(rng.uniformInt(vocab));
    return prompt;
}

std::vector<uint32_t>
referenceStream(const std::vector<uint32_t> &prompt, size_t maxNew)
{
    const ModelProfile &model = modelByName("TinyLM-decode");
    MsqConfig qcfg;
    qcfg.hessianCompensation = false;
    DecodeEngine engine(model, qcfg, replicaDecodeConfig());
    engine.submit(prompt, maxNew);
    const DecodeReport rep = engine.run();
    EXPECT_EQ(rep.requests.size(), 1u);
    return rep.requests.empty() ? std::vector<uint32_t>()
                                : rep.requests.front().tokens;
}

SupervisorConfig
supervisorConfig(size_t replicas)
{
    SupervisorConfig sc;
    sc.serverBinary = MSQ_SERVER_BIN;
    sc.replicas = replicas;
    sc.ioWorkers = 1;
    sc.maxQueue = 16;
    sc.threads = 1;
    sc.maxBatch = 4;
    return sc;
}

/** Bounded wait until `pred()` holds. */
template <typename Pred>
bool
waitFor(Pred pred, double limitMs = 30000.0)
{
    const uint64_t t0 = steadyNanos();
    while (!pred()) {
        if (elapsedMs(t0) >= limitMs)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
}

// ---------------------------------------------------------------------
// Supervision

TEST(ReplicaSupervisor, SpawnsAndReportsDistinctHealthyPorts)
{
    ReplicaSupervisor sup(supervisorConfig(2));
    ASSERT_TRUE(sup.start());
    const std::vector<ReplicaEndpoint> eps = sup.endpoints();
    ASSERT_EQ(eps.size(), 2u);
    EXPECT_NE(eps[0].port, 0u);
    EXPECT_NE(eps[1].port, 0u);
    EXPECT_NE(eps[0].port, eps[1].port);
    EXPECT_NE(eps[0].generation, eps[1].generation);
    EXPECT_TRUE(eps[0].healthy);
    EXPECT_TRUE(eps[1].healthy);
    EXPECT_GE(sup.replicaPid(0), 0);
    EXPECT_GE(sup.replicaPid(1), 0);

    // A direct Stats probe answers with a sane idle snapshot (the
    // demo deployment's arena is unbounded: capacityPages 0).
    StatsMsg sm;
    ASSERT_TRUE(probeReplicaStats(eps[0].port, 2000, sm));
    EXPECT_EQ(sm.inFlight, 0u);
    EXPECT_EQ(sm.draining, 0u);
    EXPECT_EQ(sm.requestsServed, 0u);

    // The replica is a real server: a stream matches the in-process
    // reference bit for bit.
    const std::vector<uint32_t> prompt = makePrompt(71, 5, 64);
    ClientConfig cc;
    cc.port = eps[1].port;
    NetClient client(cc);
    const GenerateResult res = client.generate(prompt, 6);
    ASSERT_EQ(res.code, NetCode::Ok) << netCodeName(res.code);
    EXPECT_EQ(res.tokens, referenceStream(prompt, 6));

    sup.stop();
    EXPECT_GE(sup.stats().spawns, 2u);
    EXPECT_GE(sup.stats().probes, 1u);
}

TEST(ReplicaSupervisor, RespawnsKilledReplicaWithBumpedGeneration)
{
    ReplicaSupervisor sup(supervisorConfig(1));
    ASSERT_TRUE(sup.start());
    const ReplicaEndpoint before = sup.endpoints().front();
    ASSERT_TRUE(before.healthy);

    ASSERT_TRUE(sup.killReplica(0));
    ASSERT_TRUE(waitFor([&] {
        const ReplicaEndpoint ep = sup.endpoints().front();
        return ep.healthy && ep.generation > before.generation;
    })) << "victim never respawned";

    const ReplicaEndpoint after = sup.endpoints().front();
    EXPECT_NE(after.port, 0u);
    StatsMsg sm;
    EXPECT_TRUE(probeReplicaStats(after.port, 2000, sm));

    const SupervisorStats st = sup.stats();
    EXPECT_GE(st.kills, 1u);
    EXPECT_GE(st.deaths, 1u);
    EXPECT_GE(st.respawns, 1u);
    sup.stop();
}

// ---------------------------------------------------------------------
// Routing

TEST(ClusterController, RoutesAcrossReplicasAndStreamsMatchReference)
{
    ReplicaSupervisor sup(supervisorConfig(2));
    ASSERT_TRUE(sup.start());
    ClusterController ctl(sup, ControllerConfig{});
    ASSERT_TRUE(ctl.start());
    const uint16_t port = ctl.boundPort();
    ASSERT_NE(port, 0u);

    constexpr size_t kClients = 6;
    std::vector<std::vector<uint32_t>> prompts, got(kClients);
    std::vector<NetCode> codes(kClients, NetCode::ConnectionLost);
    for (size_t i = 0; i < kClients; ++i)
        prompts.push_back(makePrompt(900 + i, 4 + i % 3, 64));
    std::vector<std::thread> threads;
    for (size_t i = 0; i < kClients; ++i)
        threads.emplace_back([&, i] {
            ClientConfig cc;
            cc.port = port;
            cc.seed = 10 + i;
            NetClient client(cc);
            const GenerateResult res = client.generate(prompts[i], 8);
            codes[i] = res.code;
            got[i] = res.tokens;
        });
    for (std::thread &t : threads)
        t.join();
    for (size_t i = 0; i < kClients; ++i) {
        ASSERT_EQ(codes[i], NetCode::Ok) << netCodeName(codes[i]);
        EXPECT_EQ(got[i], referenceStream(prompts[i], 8))
            << "client " << i;
    }

    EXPECT_TRUE(ctl.drain());
    const ControllerStats cs = ctl.stats();
    EXPECT_EQ(cs.requestsCompleted, kClients);
    EXPECT_EQ(cs.droppedStreams, 0u);
    uint64_t served = 0;
    for (uint64_t n : cs.perReplicaServed)
        served += n;
    EXPECT_EQ(served, kClients);
    sup.stop();
}

TEST(ClusterController, AnswersAggregateStatsQueries)
{
    // The controller speaks the same protocol as a replica, Stats frame
    // included — the probe helper works against it unchanged.
    ReplicaSupervisor sup(supervisorConfig(1));
    ASSERT_TRUE(sup.start());
    ClusterController ctl(sup, ControllerConfig{});
    ASSERT_TRUE(ctl.start());

    StatsMsg sm;
    ASSERT_TRUE(probeReplicaStats(ctl.boundPort(), 2000, sm));
    EXPECT_EQ(sm.draining, 0u);
    EXPECT_EQ(sm.inFlight, 0u);

    ctl.requestDrain();
    ASSERT_TRUE(waitFor([&] {
        StatsMsg s;
        return probeReplicaStats(ctl.boundPort(), 2000, s) &&
               s.draining == 1u;
    })) << "drain flag never surfaced in the Stats snapshot";
    ctl.stop();
    sup.stop();
}

// ---------------------------------------------------------------------
// Cross-process chaos: SIGKILL under load.

TEST(ClusterChaos, FailoverOnSigkillKeepsStreamsByteIdentical)
{
    ReplicaSupervisor sup(supervisorConfig(3));
    ASSERT_TRUE(sup.start());
    ControllerConfig ccfg;
    ccfg.pollMs = 5;
    ClusterController ctl(sup, ccfg);
    ASSERT_TRUE(ctl.start());
    const uint16_t port = ctl.boundPort();

    constexpr size_t kClients = 8;
    constexpr uint32_t kMaxNew = 48; // long streams: the kill lands
                                     // mid-flight, not between requests
    std::vector<std::vector<uint32_t>> prompts, want, got(kClients);
    std::vector<NetCode> codes(kClients, NetCode::ConnectionLost);
    std::vector<uint64_t> folds(kClients, 0);
    for (size_t i = 0; i < kClients; ++i) {
        prompts.push_back(makePrompt(4200 + i, 4 + i % 4, 64));
        want.push_back(referenceStream(prompts[i], kMaxNew));
    }

    std::vector<std::thread> threads;
    for (size_t i = 0; i < kClients; ++i)
        threads.emplace_back([&, i] {
            ClientConfig cc;
            cc.port = port;
            cc.seed = 50 + i;
            cc.maxAttempts = 12;
            cc.backoffBaseMs = 10;
            cc.backoffCapMs = 100;
            NetClient client(cc);
            const GenerateResult res =
                client.generate(prompts[i], kMaxNew);
            codes[i] = res.code;
            got[i] = res.tokens;
            folds[i] = res.streamFold;
        });

    // Kill the replica carrying the most live routes once streaming is
    // demonstrably underway.
    size_t victim = 0;
    uint64_t victimGen = 0;
    ASSERT_TRUE(waitFor([&] {
        const ControllerStats cs = ctl.stats();
        if (cs.tokensRelayed == 0)
            return false;
        uint64_t best = 0;
        bool armed = false;
        for (size_t i = 0; i < cs.perReplicaActive.size(); ++i)
            if (cs.perReplicaActive[i] > best) {
                best = cs.perReplicaActive[i];
                victim = i;
                armed = true;
            }
        return armed;
    })) << "no replica ever held a live route";
    for (const ReplicaEndpoint &ep : sup.endpoints())
        if (ep.index == victim)
            victimGen = ep.generation;
    ASSERT_TRUE(sup.killReplica(victim));

    for (std::thread &t : threads)
        t.join();

    // Every stream completed and is byte-identical to the fault-free
    // reference — failover replay left no gap, duplicate, or reorder.
    for (size_t i = 0; i < kClients; ++i) {
        ASSERT_EQ(codes[i], NetCode::Ok)
            << "client " << i << ": " << netCodeName(codes[i]);
        EXPECT_EQ(got[i], want[i]) << "client " << i;
        EXPECT_EQ(folds[i],
                  tokenStreamFold(want[i].data(), want[i].size()))
            << "client " << i;
    }

    // The kill was observed and at least one route failed over.
    const ControllerStats cs = ctl.stats();
    EXPECT_GE(cs.failovers, 1u);
    EXPECT_GE(cs.replicaDeaths, 1u);

    // The supervisor respawned the victim; the controller re-enlists
    // it and routes a fresh request through it.
    ASSERT_TRUE(waitFor([&] {
        const std::vector<ReplicaEndpoint> eps = sup.endpoints();
        return victim < eps.size() && eps[victim].healthy &&
               eps[victim].generation > victimGen;
    })) << "victim never respawned";
    {
        const std::vector<uint32_t> prompt = makePrompt(4300, 5, 64);
        ClientConfig cc;
        cc.port = port;
        cc.seed = 99;
        NetClient client(cc);
        const GenerateResult res = client.generate(prompt, 6);
        ASSERT_EQ(res.code, NetCode::Ok) << netCodeName(res.code);
        EXPECT_EQ(res.tokens, referenceStream(prompt, 6));
    }

    // Drain: zero dropped streams is the invariant.
    EXPECT_TRUE(ctl.drain());
    EXPECT_EQ(ctl.stats().droppedStreams, 0u);
    const SupervisorStats st = sup.stats();
    EXPECT_GE(st.kills, 1u);
    EXPECT_GE(st.respawns, 1u);
    sup.stop();
}

} // namespace
} // namespace msq
