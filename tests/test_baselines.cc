/**
 * @file
 * Tests for the baseline quantizers: RTN, AWQ, SmoothQuant migration,
 * OmniQuant-lite clipping, Atom-lite mixed precision, SDQ-lite N:M
 * decomposition, OliVe outlier-victim pairs, GOBO centroids, activation
 * and KV-cache quantization. Each test pins the distinctive behaviour
 * of the method (the property the paper's comparison hinges on).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "quant/act_quant.h"
#include "quant/atom_lite.h"
#include "quant/awq.h"
#include "quant/gobo.h"
#include "quant/kv_cache.h"
#include "quant/olive.h"
#include "quant/omniquant_lite.h"
#include "quant/quant_util.h"
#include "quant/rtn.h"
#include "quant/sdq_lite.h"
#include "quant/smoothquant.h"

namespace msq {
namespace {

Matrix
gaussianWeights(size_t k, size_t o, Rng &rng, double sigma = 0.05)
{
    Matrix m(k, o);
    for (size_t r = 0; r < k; ++r)
        for (size_t c = 0; c < o; ++c)
            m(r, c) = rng.gaussian(0.0, sigma);
    return m;
}

TEST(QuantUtil, SymQuantClipsAndRounds)
{
    EXPECT_DOUBLE_EQ(symQuantValue(0.26, 0.1, 7), 0.3);
    EXPECT_DOUBLE_EQ(symQuantValue(5.0, 0.1, 7), 0.7);
    EXPECT_DOUBLE_EQ(symQuantValue(-5.0, 0.1, 7), -0.7);
}

TEST(QuantUtil, ThreeSigma)
{
    std::vector<double> v(1000, 0.0);
    Rng rng(1);
    for (double &x : v)
        x = rng.gaussian();
    const double thr = threeSigmaThreshold(v.data(), v.size());
    EXPECT_NEAR(thr, 3.0, 0.3);
}

TEST(Rtn, ExactForRepresentableValues)
{
    Matrix w(1, 4);
    w(0, 0) = 1.0;
    w(0, 1) = -0.5;
    w(0, 2) = 0.25;
    w(0, 3) = 0.0;
    // 8-bit quantization of 4 values scaled by 1/127: sub-0.5% error.
    RtnQuantizer q(8, 0);
    const QuantResult res = q.quantize(w, Matrix());
    for (size_t c = 0; c < 4; ++c)
        EXPECT_NEAR(res.dequant(0, c), w(0, c), 0.005);
}

TEST(Rtn, EbwAccountsGroupScale)
{
    RtnQuantizer q(4, 128);
    Rng rng(3);
    const Matrix w = gaussianWeights(8, 256, rng);
    const QuantResult res = q.quantize(w, Matrix());
    EXPECT_DOUBLE_EQ(res.ebw, 4.0 + 16.0 / 128.0);
}

TEST(Awq, ProtectsSalientChannels)
{
    // Construct a layer where channel 0 sees huge activations. AWQ
    // should quantize channel 0's weights more accurately than RTN.
    Rng rng(4);
    const size_t k = 32, o = 64;
    Matrix w = gaussianWeights(k, o, rng, 0.05);
    Matrix x(k, 64);
    for (size_t r = 0; r < k; ++r)
        for (size_t t = 0; t < 64; ++t)
            x(r, t) = rng.gaussian(0.0, r == 0 ? 50.0 : 1.0);

    AwqQuantizer awq(3, 32);
    RtnQuantizer rtn(3, 32);
    const QuantResult qa = awq.quantize(w, x);
    const QuantResult qr = rtn.quantize(w, x);

    double awq_err = 0.0, rtn_err = 0.0;
    for (size_t c = 0; c < o; ++c) {
        awq_err += std::pow(qa.dequant(0, c) - w(0, c), 2);
        rtn_err += std::pow(qr.dequant(0, c) - w(0, c), 2);
    }
    EXPECT_LT(awq_err, rtn_err);
}

TEST(SmoothQuant, MigrationIsExactInRealArithmetic)
{
    Rng rng(5);
    const Matrix w = gaussianWeights(16, 8, rng);
    Matrix x = gaussianWeights(16, 32, rng, 1.0);
    const Matrix ref = w.transposedMatmul(x);

    const std::vector<double> s = migrationScales(w, x, 0.5);
    Matrix wm = w;
    Matrix xm = x;
    migrateWeights(wm, s);
    migrateActivations(xm, s);
    const Matrix out = wm.transposedMatmul(xm);
    EXPECT_LT(out.normalizedErrorTo(ref), 1e-20);
}

TEST(SmoothQuant, ReducesActivationRange)
{
    // With alpha=1 all activation magnitude moves into the weights.
    Rng rng(6);
    const Matrix w = gaussianWeights(16, 8, rng);
    Matrix x(16, 32);
    for (size_t r = 0; r < 16; ++r)
        for (size_t t = 0; t < 32; ++t)
            x(r, t) = rng.gaussian(0.0, r == 0 ? 100.0 : 1.0);

    const std::vector<double> s = migrationScales(w, x, 1.0);
    Matrix xm = x;
    migrateActivations(xm, s);
    double max0 = 0.0;
    for (size_t t = 0; t < 32; ++t)
        max0 = std::max(max0, std::fabs(xm(0, t)));
    // At alpha=1 each channel is normalized to max-magnitude 1.
    EXPECT_LE(max0, 1.0 + 1e-12);
    EXPECT_GT(max0, 0.5);
}

TEST(OmniQuantLite, ClippingNeverWorseThanPlain)
{
    Rng rng(7);
    // Heavy-tailed span: clipping should strictly help at 2 bits.
    std::vector<double> v(256);
    for (double &x : v)
        x = rng.studentT(3.0) * 0.05;

    std::vector<double> plain = v;
    symQuantSpan(plain.data(), plain.size(), 1);
    const double err_plain = spanMse(plain.data(), v.data(), v.size());

    std::vector<double> clipped(v.size());
    OmniQuantLite::searchClipRatio(v.data(), v.size(), 1, clipped.data());
    const double err_clip = spanMse(clipped.data(), v.data(), v.size());
    EXPECT_LE(err_clip, err_plain + 1e-18);
}

TEST(AtomLite, OutlierChannelsKeepHighPrecision)
{
    Rng rng(8);
    const size_t k = 64, o = 64;
    Matrix w = gaussianWeights(k, o, rng, 0.05);
    Matrix x(k, 32);
    for (size_t r = 0; r < k; ++r)
        for (size_t t = 0; t < 32; ++t)
            x(r, t) = rng.gaussian(0.0, r < 4 ? 40.0 : 1.0);

    AtomLite atom(2, 64, 4);
    const QuantResult res = atom.quantize(w, x);
    // The four salient channels were quantized at 8 bits: tiny error.
    for (size_t r = 0; r < 4; ++r) {
        for (size_t c = 0; c < o; ++c) {
            EXPECT_NEAR(res.dequant(r, c), w(r, c),
                        0.02 * 0.05 * 10 + 1e-6);
        }
    }
    EXPECT_GT(res.ebw, 2.0);
    EXPECT_LT(res.ebw, 4.0);
}

TEST(SdqLite, RigidPatternHurtsWhenOutliersCluster)
{
    // A group with more outliers than the N:M pattern admits leaves the
    // excess in the low-precision inlier plane and inflates its scale.
    // A more permissive pattern (4:8) must reconstruct strictly better —
    // the flexibility gap the paper contrasts MicroScopiQ against.
    Matrix w(1, 64, 0.01);
    w(0, 0) = 1.0;
    w(0, 2) = -1.1;
    w(0, 4) = 0.9;
    w(0, 6) = -1.0;

    SdqLite rigid(2, 1, 8, 64);
    SdqLite permissive(2, 4, 8, 64);
    const double err_rigid =
        rigid.quantize(w, Matrix()).dequant.normalizedErrorTo(w);
    const double err_perm =
        permissive.quantize(w, Matrix()).dequant.normalizedErrorTo(w);
    EXPECT_LT(err_perm, err_rigid);
}

TEST(Olive, AbfloatPowersOfTwo)
{
    EXPECT_DOUBLE_EQ(OliveQuantizer::abfloatRoundTrip(5.0, 4, 1.0, 0), 4.0);
    EXPECT_DOUBLE_EQ(OliveQuantizer::abfloatRoundTrip(6.0, 4, 1.0, 0), 8.0);
    EXPECT_DOUBLE_EQ(OliveQuantizer::abfloatRoundTrip(-3.0, 4, 1.0, 0), -4.0);
    EXPECT_DOUBLE_EQ(OliveQuantizer::abfloatRoundTrip(0.0, 4, 1.0, 0), 0.0);
    // Saturates at 2^(levels-1).
    EXPECT_DOUBLE_EQ(OliveQuantizer::abfloatRoundTrip(1e6, 4, 1.0, 0),
                     64.0);
}

TEST(Olive, VictimPruning)
{
    // One isolated outlier: its neighbour is zeroed, outlier preserved
    // in magnitude order.
    Matrix w(1, 128, 0.01);
    for (size_t c = 0; c < 128; ++c)
        w(0, c) = 0.01 * ((c % 3) == 0 ? 1 : -1);
    w(0, 64) = 1.0;  // isolated outlier

    OliveQuantizer olive(4, 128);
    const QuantResult res = olive.quantize(w, Matrix());
    EXPECT_DOUBLE_EQ(res.dequant(0, 65), 0.0);        // victim pruned
    EXPECT_GT(std::fabs(res.dequant(0, 64)), 0.5);    // outlier kept
}

TEST(Olive, AdjacentOutlierDestroyed)
{
    // Two adjacent outliers: the second becomes the victim — the paper's
    // central criticism of OliVe (Section 3.2).
    Matrix w(1, 128, 0.01);
    for (size_t c = 0; c < 128; ++c)
        w(0, c) = 0.01 * ((c % 2) == 0 ? 1 : -1);
    w(0, 64) = 1.0;
    w(0, 65) = -1.2;  // adjacent outlier

    OliveQuantizer olive(4, 128);
    const QuantResult res = olive.quantize(w, Matrix());
    EXPECT_GT(std::fabs(res.dequant(0, 64)), 0.5);
    EXPECT_DOUBLE_EQ(res.dequant(0, 65), 0.0);  // destroyed outlier
}

TEST(Gobo, OutliersExact)
{
    Rng rng(10);
    Matrix w = gaussianWeights(8, 128, rng, 0.02);
    w(3, 7) = 0.9;   // far outside 3 sigma
    w(5, 100) = -1.1;

    GoboQuantizer gobo(3);
    const QuantResult res = gobo.quantize(w, Matrix());
    EXPECT_DOUBLE_EQ(res.dequant(3, 7), 0.9);
    EXPECT_DOUBLE_EQ(res.dequant(5, 100), -1.1);
    // High EBW is the price (paper Table 1).
    EXPECT_GT(res.ebw, 3.0);
}

TEST(Gobo, InliersSnapToCentroids)
{
    Rng rng(11);
    Matrix w = gaussianWeights(4, 256, rng, 0.02);
    GoboQuantizer gobo(3);
    const QuantResult res = gobo.quantize(w, Matrix());
    // At most 8 distinct values among weights that changed (inliers
    // snapped to centroids); untouched values are exact outliers.
    std::vector<double> distinct;
    for (size_t i = 0; i < w.size(); ++i) {
        const double v = res.dequant.data()[i];
        if (v == w.data()[i])
            continue;  // full-precision outlier
        bool found = false;
        for (double d : distinct)
            found |= d == v;
        if (!found)
            distinct.push_back(v);
    }
    EXPECT_LE(distinct.size(), 8u);
}

TEST(ActQuant, MxIntPerTokenGroups)
{
    Rng rng(12);
    Matrix x = gaussianWeights(256, 4, rng, 1.0);
    const Matrix q = quantizeActivationsMxInt(x, 8, 128);
    EXPECT_LT(q.normalizedErrorTo(x), 1e-3);
    const Matrix q4 = quantizeActivationsMxInt(x, 4, 128);
    EXPECT_GT(q4.normalizedErrorTo(x), q.normalizedErrorTo(x));
}

TEST(ActQuant, PerTokenBaseline)
{
    Rng rng(13);
    Matrix x = gaussianWeights(64, 8, rng, 1.0);
    const Matrix q = quantizeActivationsPerToken(x, 8);
    EXPECT_LT(q.normalizedErrorTo(x), 1e-3);
}

TEST(KvCache, ResidualWindowUntouched)
{
    Rng rng(14);
    Matrix keys = gaussianWeights(16, 256, rng, 1.0);
    KvCacheConfig cfg;
    cfg.bits = 2;
    cfg.residual = 64;
    const Matrix q = quantizeKeyCache(keys, cfg);
    // Last 64 tokens are bit-identical.
    for (size_t ch = 0; ch < 16; ++ch)
        for (size_t t = 192; t < 256; ++t)
            EXPECT_DOUBLE_EQ(q(ch, t), keys(ch, t));
    // Earlier tokens are quantized (changed).
    double diff = 0.0;
    for (size_t ch = 0; ch < 16; ++ch)
        for (size_t t = 0; t < 192; ++t)
            diff += std::fabs(q(ch, t) - keys(ch, t));
    EXPECT_GT(diff, 0.0);
}

TEST(KvCache, ValuePerTokenGrouping)
{
    Rng rng(15);
    Matrix values = gaussianWeights(256, 32, rng, 1.0);
    KvCacheConfig cfg;
    cfg.bits = 4;
    cfg.residual = 8;
    const Matrix q = quantizeValueCache(values, cfg);
    EXPECT_LT(q.normalizedErrorTo(values), 0.05);
}

} // namespace
} // namespace msq
