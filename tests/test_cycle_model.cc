/**
 * @file
 * Tests for the cycle-level performance model: scaling laws (more
 * tokens / bigger GEMMs cost more), MODE 2b throughput doubling,
 * ReCoN contention behaviour versus unit count (the Fig. 16b / 18a
 * mechanisms), memory-bound behaviour at decode, and the memory
 * hierarchy arithmetic.
 */

#include <gtest/gtest.h>

#include "accel/baselines.h"
#include "accel/cycle_model.h"
#include "accel/energy.h"
#include "accel/memory.h"
#include "common/rng.h"

namespace msq {
namespace {

Workload
llmLayer(size_t tokens, unsigned bits, double outlier_frac = 0.09)
{
    Workload wl;
    wl.tokens = tokens;
    wl.reduction = 4096;
    wl.outputs = 4096;
    wl.weightBits = bits;
    wl.ebw = bits == 2 ? 2.36 : 4.15;
    wl.microOutlierFrac = outlier_frac;
    return wl;
}

TEST(Memory, CycleArithmetic)
{
    AccelConfig cfg;
    MemoryTraffic t;
    t.dramBytes = 2560.0;  // 10 cycles at 256 B/cycle
    t.l2Bytes = 640.0;     // 10 cycles at 64 B/cycle
    const MemoryCycles c = memoryCycles(cfg, t);
    EXPECT_DOUBLE_EQ(c.dramCycles, 10.0);
    EXPECT_DOUBLE_EQ(c.ocpCycles, 10.0);
    EXPECT_DOUBLE_EQ(c.bound(), 10.0);
}

TEST(CycleModel, MoreTokensMoreCycles)
{
    AccelConfig cfg;
    CycleModel model(cfg);
    Rng rng(1);
    const CycleStats small = model.run(llmLayer(1, 2), rng);
    Rng rng2(1);
    const CycleStats big = model.run(llmLayer(64, 2), rng2);
    EXPECT_GT(big.totalCycles, small.totalCycles);
    EXPECT_EQ(big.macs, small.macs * 64);
}

TEST(CycleModel, Mode2bHalvesColumnTiles)
{
    // At bb=2 each PE holds two weights, so the same GEMM needs half
    // the output tiles and roughly half the cycles at small batch
    // (the paper's decode regime). At large batch the doubled per-row
    // ReCoN demand eats into the gain, so the test pins the decode
    // case.
    AccelConfig cfg;
    CycleModel model(cfg);
    Rng rng(2);
    const CycleStats w4 = model.run(llmLayer(4, 4), rng);
    Rng rng2(2);
    const CycleStats w2 = model.run(llmLayer(4, 2), rng2);
    EXPECT_LT(w2.totalCycles, w4.totalCycles);
    EXPECT_LT(static_cast<double>(w2.totalCycles),
              0.75 * static_cast<double>(w4.totalCycles));
}

TEST(CycleModel, DecodeHasNoReconConflicts)
{
    // M = 1: emissions are perfectly staggered by the systolic skew,
    // so a single ReCoN unit sees no contention (the regime the paper
    // reports in Fig. 16b).
    AccelConfig cfg;
    cfg.reconUnits = 1;
    CycleModel model(cfg);
    Rng rng(3);
    const CycleStats s = model.run(llmLayer(1, 2), rng);
    EXPECT_GT(s.reconAccesses, 0u);
    EXPECT_EQ(s.reconConflicts, 0u);
}

TEST(CycleModel, ConflictsShrinkWithMoreReconUnits)
{
    Rng rngs[4] = {Rng(4), Rng(4), Rng(4), Rng(4)};
    double rates[4];
    size_t idx = 0;
    for (size_t units : {1u, 2u, 4u, 8u}) {
        AccelConfig cfg;
        cfg.reconUnits = units;
        CycleModel model(cfg);
        const CycleStats s = model.run(llmLayer(8, 2), rngs[idx]);
        rates[idx] = s.conflictRate();
        ++idx;
    }
    EXPECT_GE(rates[0], rates[1]);
    EXPECT_GE(rates[1], rates[2]);
    EXPECT_GE(rates[2], rates[3]);
    EXPECT_LT(rates[3], 0.01);
}

TEST(CycleModel, LatencyImprovesWithMoreReconUnits)
{
    uint64_t prev = UINT64_MAX;
    for (size_t units : {1u, 2u, 8u}) {
        AccelConfig cfg;
        cfg.reconUnits = units;
        CycleModel model(cfg);
        Rng rng(5);
        const CycleStats s = model.run(llmLayer(16, 2), rng);
        EXPECT_LE(s.totalCycles, prev);
        prev = s.totalCycles;
    }
}

TEST(CycleModel, HigherOutlierRateCostsMore)
{
    AccelConfig cfg;
    CycleModel model(cfg);
    Rng a(6), b(6);
    const CycleStats low = model.run(llmLayer(8, 2, 0.01), a);
    const CycleStats high = model.run(llmLayer(8, 2, 0.5), b);
    EXPECT_LE(low.totalCycles, high.totalCycles);
    EXPECT_LT(low.reconAccesses, high.reconAccesses);
}

TEST(CycleModel, DramTrafficTracksEbw)
{
    AccelConfig cfg;
    CycleModel model(cfg);
    Rng a(7), b(7);
    Workload w2 = llmLayer(1, 2);
    Workload w4 = llmLayer(1, 4);
    const CycleStats s2 = model.run(w2, a);
    const CycleStats s4 = model.run(w4, b);
    // Weight traffic ratio ~ EBW ratio (iact/oact contributions small).
    EXPECT_NEAR(s4.traffic.dramBytes / s2.traffic.dramBytes,
                4.15 / 2.36, 0.15);
}

TEST(Energy, MacTableAndScaling)
{
    EnergyParams p;
    EXPECT_LT(macEnergy(p, 2), macEnergy(p, 4));
    EXPECT_LT(macEnergy(p, 4), macEnergy(p, 8));
    EXPECT_LT(macEnergy(p, 8), macEnergy(p, 16));
    // Interpolation for odd widths is monotone too.
    EXPECT_LT(macEnergy(p, 5), macEnergy(p, 6));
}

TEST(Energy, BreakdownSumsAndDominance)
{
    AccelConfig cfg;
    CycleModel model(cfg);
    Rng rng(8);
    const CycleStats s = model.run(llmLayer(16, 2), rng);
    EnergyParams p;
    const EnergyBreakdown e = computeEnergy(p, s, 2, 1.0, 1.0);
    EXPECT_GT(e.total(), 0.0);
    EXPECT_NEAR(e.total(), e.peDynamic + e.reconDynamic +
                                e.bufferDynamic + e.l2Dynamic +
                                e.dramDynamic + e.staticEnergy,
                1e-6);
    // DRAM dominates a streaming GEMV at low precision.
    EXPECT_GT(e.dramDynamic, e.peDynamic);
}

TEST(Designs, MicroScopiQV2FastestAtIsoAccuracy)
{
    // Fig. 12's headline: v2 (mostly 2-bit) beats every baseline on
    // latency; GOBO (8-bit PEs + unaligned outliers) is slowest.
    AccelConfig cfg;
    std::vector<Workload> wls = {llmLayer(8, 4)};
    double v2_cycles = 0.0, gobo_cycles = 0.0, olive_cycles = 0.0;
    for (const AccelDesign &d : allDesigns()) {
        Rng rng(9);
        const DesignRun run = evaluateDesign(d, cfg, wls, rng);
        if (d.name == "MicroScopiQ-v2")
            v2_cycles = run.cycles;
        if (d.name == "GOBO")
            gobo_cycles = run.cycles;
        if (d.name == "OliVe")
            olive_cycles = run.cycles;
    }
    EXPECT_LT(v2_cycles, olive_cycles);
    EXPECT_LT(olive_cycles, gobo_cycles);
}

TEST(Designs, EnergyOrdering)
{
    AccelConfig cfg;
    std::vector<Workload> wls = {llmLayer(8, 4)};
    double v2 = 0.0, adaptiv = 0.0;
    for (const AccelDesign &d : allDesigns()) {
        Rng rng(10);
        const DesignRun run = evaluateDesign(d, cfg, wls, rng);
        if (d.name == "MicroScopiQ-v2")
            v2 = run.energyPj;
        if (d.name == "AdaptivFloat")
            adaptiv = run.energyPj;
    }
    EXPECT_LT(v2, adaptiv);
}

TEST(NocIntegration, SmallOverheads)
{
    for (const NocIntegration &study : nocIntegrationStudies()) {
        EXPECT_LT(study.reconAddedFrac, 0.05);
        EXPECT_NEAR(study.basePeAreaFrac + study.baseNocAreaFrac, 1.0,
                    0.01);
    }
}

} // namespace
} // namespace msq
