/**
 * @file
 * Autoregressive decode subsystem: end-to-end generation on the
 * TinyLM-decode zoo profile must produce bit-identical token streams
 * across `MSQ_THREADS`, batch composition (slot count, step budget,
 * prefill chunking), batching mode (continuous vs static), and
 * admission order — the scheduler may only change *when* a sequence's
 * tokens are computed, never their values. Plus wiring validation,
 * scheduler accounting, and KV-pool engagement checks.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/simd_dispatch.h"
#include "serve/decode.h"

namespace msq {
namespace {

/** A mixed-length request mix (prompts and generation lengths vary). */
struct Workload
{
    std::vector<std::vector<uint32_t>> prompts;
    std::vector<size_t> maxNew;
};

Workload
makeWorkload(size_t requests, size_t vocab)
{
    Workload w;
    for (size_t i = 0; i < requests; ++i) {
        Rng rng(1000 + i);
        const size_t len = 3 + i % 5;
        std::vector<uint32_t> prompt(len);
        for (uint32_t &tok : prompt)
            tok = static_cast<uint32_t>(rng.uniformInt(vocab));
        w.prompts.push_back(std::move(prompt));
        w.maxNew.push_back(2 + (i * 7) % 9);
    }
    return w;
}

MsqConfig
quantConfig()
{
    MsqConfig cfg;
    cfg.hessianCompensation = false;  // keep deployment fast
    return cfg;
}

DecodeConfig
baseDecodeConfig()
{
    DecodeConfig cfg;
    cfg.maxBatchSeqs = 4;
    cfg.stepTokenBudget = 16;
    cfg.prefillChunk = 4;
    cfg.kv = {2, 4, 4};  // small groups so quantization engages early
    cfg.vocab = 64;
    return cfg;
}

/**
 * Run the workload through an engine, submitting in the order given by
 * `order` (identity when empty), and return the generated stream of
 * each *logical* request index.
 */
std::vector<std::vector<uint32_t>>
generate(const Workload &w, const DecodeConfig &cfg,
         std::vector<size_t> order = {})
{
    if (order.empty())
        for (size_t i = 0; i < w.prompts.size(); ++i)
            order.push_back(i);
    const ModelProfile &model = modelByName("TinyLM-decode");
    DecodeEngine engine(model, quantConfig(), cfg);
    std::map<uint64_t, size_t> logical;
    for (size_t idx : order)
        logical[engine.submit(w.prompts[idx], w.maxNew[idx])] = idx;
    const DecodeReport report = engine.run();
    EXPECT_EQ(report.requests.size(), w.prompts.size());
    std::vector<std::vector<uint32_t>> streams(w.prompts.size());
    for (const GenRecord &rec : report.requests) {
        EXPECT_TRUE(logical.count(rec.id));
        if (logical.count(rec.id))
            streams[logical[rec.id]] = rec.tokens;
    }
    return streams;
}

TEST(DecodeWiringTest, ZooProfiles)
{
    EXPECT_TRUE(decodeCapable(modelByName("TinyLM-decode")));
    EXPECT_TRUE(decodeCapable(modelByName("LLaMA2-7B")));
    EXPECT_TRUE(decodeCapable(modelByName("Phi3-3.8B")));
    EXPECT_FALSE(decodeCapable(modelByName("TinyLM")));
    EXPECT_FALSE(decodeCapable(modelByName("ResNet50")));
    EXPECT_FALSE(decodeCapable(modelByName("VMamba-S")));

    const DecodeWiring w = decodeWiring(modelByName("TinyLM-decode"));
    EXPECT_EQ(w.hidden, 64u);
    const ModelProfile &m = modelByName("TinyLM-decode");
    EXPECT_EQ(m.layers[w.qkv].name, "attn_qkv");
    EXPECT_EQ(m.layers[w.down].name, "mlp_down");
    EXPECT_EQ(m.decode.heads * m.decode.headDim, w.hidden);
}

TEST(DecodeWiringDeathTest, NonTransformerProfileIsFatal)
{
    EXPECT_DEATH(decodeWiring(modelByName("TinyLM")), "cannot decode");
}

TEST(DecodeEngine, GeneratesRequestedTokens)
{
    clearPackedModelCache();
    const Workload w = makeWorkload(6, 64);
    const ModelProfile &model = modelByName("TinyLM-decode");
    DecodeEngine engine(model, quantConfig(), baseDecodeConfig());
    for (size_t i = 0; i < w.prompts.size(); ++i)
        engine.submit(w.prompts[i], w.maxNew[i]);
    EXPECT_EQ(engine.waiting(), 6u);
    EXPECT_EQ(engine.active(), 0u);

    const DecodeReport rep = engine.run();
    EXPECT_EQ(engine.waiting(), 0u);
    EXPECT_EQ(engine.active(), 0u);
    ASSERT_EQ(rep.requests.size(), 6u);

    size_t prompt_total = 0, gen_total = 0;
    for (const GenRecord &rec : rep.requests) {
        ASSERT_GE(rec.id, 1u);
        ASSERT_LE(rec.id, 6u);
        const size_t idx = rec.id - 1;  // submitted in order
        EXPECT_EQ(rec.promptTokens, w.prompts[idx].size());
        EXPECT_EQ(rec.tokens.size(), w.maxNew[idx]);
        for (uint32_t tok : rec.tokens)
            EXPECT_LT(tok, 64u);
        EXPECT_GE(rec.ttftMs, 0.0);
        EXPECT_GE(rec.totalMs, rec.ttftMs);
        EXPECT_GT(rec.steps, 0u);
        prompt_total += rec.promptTokens;
        gen_total += rec.tokens.size();
    }
    EXPECT_EQ(rep.prefillTokens, prompt_total);
    EXPECT_EQ(rep.generatedTokens, gen_total);
    EXPECT_GT(rep.steps, 0u);
    EXPECT_GT(rep.generatedTokensPerSec, 0.0);
    // Mixed lengths guarantee pure-decode steps exist.
    EXPECT_GT(rep.decodeSteps, 0u);
    EXPECT_GE(rep.meanActiveSeqs, 1.0);
    clearPackedModelCache();
}

TEST(DecodeEngine, KvPoolsQuantizeDuringGeneration)
{
    clearPackedModelCache();
    const ModelProfile &model = modelByName("TinyLM-decode");
    DecodeConfig cfg = baseDecodeConfig();
    cfg.kv = {2, 4, 2};  // tiny residual: groups close early
    DecodeEngine engine(model, quantConfig(), cfg);
    std::vector<uint32_t> prompt(12, 3);
    engine.submit(prompt, 20);
    const DecodeReport rep = engine.run();
    ASSERT_EQ(rep.requests.size(), 1u);
    // 32 tokens of history per block: packed groups must have closed,
    // and the residual tail stays bounded by residual + groupSize.
    EXPECT_GT(rep.kvPackedBytes, 0u);
    EXPECT_GT(rep.kvFpBytes, 0u);
    const size_t kv_dim = model.decode.kvHeads * model.decode.headDim;
    EXPECT_LE(rep.kvFpBytes, model.decode.blocks * 2 * kv_dim *
                                 (cfg.kv.residual + cfg.kv.groupSize) *
                                 sizeof(double));
    clearPackedModelCache();
}

TEST(DecodeEngine, TokenStreamsInvariantAcrossThreads)
{
    clearPackedModelCache();
    const Workload w = makeWorkload(8, 64);
    setThreadCount(1);
    const auto serial = generate(w, baseDecodeConfig());
    setThreadCount(4);
    const auto threaded = generate(w, baseDecodeConfig());
    setThreadCount(0);
    EXPECT_EQ(serial, threaded);
    clearPackedModelCache();
}

TEST(DecodeEngine, TokenStreamsInvariantAcrossKernelPaths)
{
    // The full decode loop — prefill, KV quantize/gather, attention,
    // every projection through the blocked GEMM — under every SIMD
    // path usable on the host, crossed with thread counts: the token
    // streams must equal the forced-scalar single-thread reference
    // exactly (MSQ_KERNEL x MSQ_THREADS never changes output).
    clearPackedModelCache();
    const Workload w = makeWorkload(6, 64);
    setKernelPath(KernelPath::Scalar);
    setThreadCount(1);
    const auto ref = generate(w, baseDecodeConfig());
    for (KernelPath path : usableKernelPaths()) {
        setKernelPath(path);
        for (unsigned threads : {1u, 4u}) {
            setThreadCount(threads);
            EXPECT_EQ(generate(w, baseDecodeConfig()), ref)
                << "path " << kernelPathName(path) << " threads "
                << threads;
        }
    }
    setThreadCount(0);
    resetKernelPath();
    clearPackedModelCache();
}

TEST(DecodeEngine, TokenStreamsInvariantAcrossBatchComposition)
{
    clearPackedModelCache();
    const Workload w = makeWorkload(8, 64);
    const auto ref = generate(w, baseDecodeConfig());

    // One sequence at a time (no batching at all).
    DecodeConfig solo = baseDecodeConfig();
    solo.maxBatchSeqs = 1;
    EXPECT_EQ(generate(w, solo), ref);

    // Wide slots, tight budget (sequences idle some steps).
    DecodeConfig tight = baseDecodeConfig();
    tight.maxBatchSeqs = 8;
    tight.stepTokenBudget = 3;
    EXPECT_EQ(generate(w, tight), ref);

    // Prefill chunking must not change values, only scheduling.
    DecodeConfig chunky = baseDecodeConfig();
    chunky.prefillChunk = 1;
    EXPECT_EQ(generate(w, chunky), ref);
    chunky.prefillChunk = 64;
    chunky.stepTokenBudget = 64;
    EXPECT_EQ(generate(w, chunky), ref);

    // Static batching: same streams, different schedule.
    DecodeConfig stat = baseDecodeConfig();
    stat.continuousBatching = false;
    EXPECT_EQ(generate(w, stat), ref);
    clearPackedModelCache();
}

TEST(DecodeEngine, TokenStreamsInvariantAcrossAdmissionOrder)
{
    clearPackedModelCache();
    const Workload w = makeWorkload(7, 64);
    const auto ref = generate(w, baseDecodeConfig());

    std::vector<size_t> reversed(w.prompts.size());
    for (size_t i = 0; i < reversed.size(); ++i)
        reversed[i] = reversed.size() - 1 - i;
    EXPECT_EQ(generate(w, baseDecodeConfig(), reversed), ref);

    std::vector<size_t> interleaved = {3, 0, 5, 1, 6, 2, 4};
    EXPECT_EQ(generate(w, baseDecodeConfig(), interleaved), ref);
    clearPackedModelCache();
}

/**
 * Run the workload through the step-at-a-time API, cancelling logical
 * request `cancelIdx` after `cancelAfterSteps` steps. Returns the
 * retired streams by logical index (the cancelled slot stays empty)
 * and reports whether the cancel call was accepted.
 */
std::vector<std::vector<uint32_t>>
generateWithCancel(const Workload &w, const DecodeConfig &cfg,
                   size_t cancelIdx, size_t cancelAfterSteps,
                   bool *accepted, std::vector<size_t> order = {})
{
    if (order.empty())
        for (size_t i = 0; i < w.prompts.size(); ++i)
            order.push_back(i);
    DecodeEngine engine(modelByName("TinyLM-decode"), quantConfig(), cfg);
    std::map<uint64_t, size_t> logical;
    uint64_t cancelId = 0;
    for (size_t idx : order) {
        const uint64_t id = engine.submit(w.prompts[idx], w.maxNew[idx]);
        logical[id] = idx;
        if (idx == cancelIdx)
            cancelId = id;
    }
    DecodeReport report;
    size_t steps = 0;
    *accepted = false;
    while (!engine.idle()) {
        if (steps++ == cancelAfterSteps)
            *accepted = engine.cancel(cancelId);
        engine.stepOnce(report);
    }
    std::vector<std::vector<uint32_t>> streams(w.prompts.size());
    for (const GenRecord &rec : report.requests)
        streams[logical[rec.id]] = rec.tokens;
    return streams;
}

TEST(DecodeEngine, CancellationLeavesSurvivorsBitIdentical)
{
    // Cancelling one sequence mid-generation must not perturb a single
    // token of any co-scheduled stream — the serving frontend relies on
    // this to cancel expired deadlines without corrupting neighbors.
    // Crossed with MSQ_THREADS and admission order, like the other
    // invariance suites.
    clearPackedModelCache();
    const Workload w = makeWorkload(6, 64);
    const auto ref = generate(w, baseDecodeConfig());

    const size_t kCancelIdx = 1;  // maxNew 9: still generating at step 2
    std::vector<size_t> reversed(w.prompts.size());
    for (size_t i = 0; i < reversed.size(); ++i)
        reversed[i] = reversed.size() - 1 - i;

    for (unsigned threads : {1u, 4u}) {
        setThreadCount(threads);
        for (const std::vector<size_t> &order :
             {std::vector<size_t>{}, reversed}) {
            bool accepted = false;
            const auto streams = generateWithCancel(
                w, baseDecodeConfig(), kCancelIdx, 2, &accepted, order);
            EXPECT_TRUE(accepted) << "threads " << threads;
            for (size_t i = 0; i < w.prompts.size(); ++i) {
                if (i == kCancelIdx) {
                    EXPECT_TRUE(streams[i].empty());
                    continue;
                }
                EXPECT_EQ(streams[i], ref[i])
                    << "survivor " << i << " threads " << threads;
            }
        }
    }
    setThreadCount(0);
    clearPackedModelCache();
}

TEST(DecodeEngine, CancelWaitingPromotesFollowersUnknownIsFalse)
{
    clearPackedModelCache();
    const Workload w = makeWorkload(3, 64);
    const auto ref = generate(w, baseDecodeConfig());

    DecodeConfig solo = baseDecodeConfig();
    solo.maxBatchSeqs = 1;  // requests 1 and 2 start in waiting_
    DecodeEngine engine(modelByName("TinyLM-decode"), quantConfig(), solo);
    const uint64_t id0 = engine.submit(w.prompts[0], w.maxNew[0]);
    const uint64_t id1 = engine.submit(w.prompts[1], w.maxNew[1]);
    const uint64_t id2 = engine.submit(w.prompts[2], w.maxNew[2]);

    EXPECT_TRUE(engine.cancel(id1));   // still waiting: plain dequeue
    EXPECT_FALSE(engine.cancel(id1));  // second cancel finds nothing
    EXPECT_FALSE(engine.cancel(9999)); // never submitted

    const DecodeReport report = engine.run();
    ASSERT_EQ(report.requests.size(), 2u);
    EXPECT_EQ(report.requests[0].id, id0);
    EXPECT_EQ(report.requests[0].tokens, ref[0]);
    EXPECT_EQ(report.requests[1].id, id2);
    EXPECT_EQ(report.requests[1].tokens, ref[2]);
    EXPECT_FALSE(engine.cancel(id2));  // retired ids are gone too
    clearPackedModelCache();
}

TEST(DecodeEngine, TokenEventStreamMatchesFinalStreams)
{
    // With streaming enabled, the per-step token events — drained the
    // way the network server drains them — must reassemble into exactly
    // the retired streams: contiguous indices from zero, `last` set on
    // precisely the final token, values bit-identical.
    clearPackedModelCache();
    const Workload w = makeWorkload(5, 64);
    DecodeEngine engine(modelByName("TinyLM-decode"), quantConfig(),
                        baseDecodeConfig());
    engine.streamTokens(true);
    std::map<uint64_t, size_t> logical;
    for (size_t i = 0; i < w.prompts.size(); ++i)
        logical[engine.submit(w.prompts[i], w.maxNew[i])] = i;

    std::map<uint64_t, std::vector<uint32_t>> streamed;
    std::map<uint64_t, size_t> lastFlags;
    DecodeReport report;
    while (!engine.idle()) {
        engine.stepOnce(report);
        for (const TokenEvent &ev : engine.takeTokenEvents()) {
            EXPECT_EQ(ev.index, streamed[ev.id].size());
            streamed[ev.id].push_back(ev.token);
            if (ev.last)
                ++lastFlags[ev.id];
            else
                EXPECT_EQ(lastFlags[ev.id], 0u);  // last is terminal
        }
    }
    EXPECT_TRUE(engine.takeTokenEvents().empty());  // drained clean
    ASSERT_EQ(report.requests.size(), w.prompts.size());
    for (const GenRecord &rec : report.requests) {
        EXPECT_EQ(streamed[rec.id], rec.tokens);
        EXPECT_EQ(lastFlags[rec.id], 1u);
    }
    clearPackedModelCache();
}

TEST(DecodeEngine, ContinuousBatchingKeepsSlotsFuller)
{
    clearPackedModelCache();
    // Strongly mixed lengths: static batching drains to one straggler
    // per batch, continuous refills the freed slots.
    Workload w;
    for (size_t i = 0; i < 12; ++i) {
        Rng rng(2000 + i);
        std::vector<uint32_t> prompt(4);
        for (uint32_t &tok : prompt)
            tok = static_cast<uint32_t>(rng.uniformInt(64));
        w.prompts.push_back(std::move(prompt));
        w.maxNew.push_back(i % 4 == 0 ? 24 : 3);
    }
    const ModelProfile &model = modelByName("TinyLM-decode");

    DecodeConfig cont = baseDecodeConfig();
    DecodeConfig stat = baseDecodeConfig();
    stat.continuousBatching = false;

    DecodeEngine ec(model, quantConfig(), cont);
    DecodeEngine es(model, quantConfig(), stat);
    for (size_t i = 0; i < w.prompts.size(); ++i) {
        ec.submit(w.prompts[i], w.maxNew[i]);
        es.submit(w.prompts[i], w.maxNew[i]);
    }
    const DecodeReport rc = ec.run();
    const DecodeReport rs = es.run();

    // Same tokens, fewer scheduler steps and fuller decode batches.
    ASSERT_EQ(rc.requests.size(), rs.requests.size());
    EXPECT_EQ(rc.generatedTokens, rs.generatedTokens);
    EXPECT_LT(rc.steps, rs.steps);
    EXPECT_GT(rc.meanActiveSeqs, rs.meanActiveSeqs);
    clearPackedModelCache();
}

/** Prompts sharing one `prefixLen`-token prefix, unique last token. */
Workload
makeSharedPrefixWorkload(size_t requests, size_t prefixLen, size_t vocab)
{
    Workload w;
    Rng rng(4242);
    std::vector<uint32_t> prefix(prefixLen);
    for (uint32_t &tok : prefix)
        tok = static_cast<uint32_t>(rng.uniformInt(vocab));
    for (size_t i = 0; i < requests; ++i) {
        std::vector<uint32_t> prompt = prefix;
        prompt.push_back(static_cast<uint32_t>((i * 5 + 1) % vocab));
        w.prompts.push_back(std::move(prompt));
        w.maxNew.push_back(4 + i % 3);
    }
    return w;
}

/** Like generate(), but also returns the run report. */
std::vector<std::vector<uint32_t>>
generateWithReport(const Workload &w, const DecodeConfig &cfg,
                   DecodeReport &report)
{
    const ModelProfile &model = modelByName("TinyLM-decode");
    DecodeEngine engine(model, quantConfig(), cfg);
    std::map<uint64_t, size_t> logical;
    for (size_t i = 0; i < w.prompts.size(); ++i)
        logical[engine.submit(w.prompts[i], w.maxNew[i])] = i;
    report = engine.run();
    std::vector<std::vector<uint32_t>> streams(w.prompts.size());
    for (const GenRecord &rec : report.requests)
        streams[logical[rec.id]] = rec.tokens;
    return streams;
}

TEST(DecodeEngine, PrefixCacheHitsAreBitIdenticalAndPrefillOnce)
{
    clearPackedModelCache();
    const size_t kRequests = 6, kPrefix = 12;
    const Workload w = makeSharedPrefixWorkload(kRequests, kPrefix, 64);

    DecodeConfig off = baseDecodeConfig();
    off.usePrefixCache = false;
    const auto ref = generate(w, off);

    DecodeConfig on = baseDecodeConfig();
    on.prefixMinTokens = 4;
    for (unsigned threads : {1u, 4u}) {
        setThreadCount(threads);
        DecodeReport rep;
        const auto cached = generateWithReport(w, on, rep);
        // Cache hits must not change a single token...
        EXPECT_EQ(cached, ref) << "threads " << threads;
        // ...and the shared prefix is prefilled exactly once: the
        // claimer forwards its whole prompt, every follower adopts the
        // cached pages and forwards only its final prompt token.
        EXPECT_EQ(rep.prefixInserts, 1u);
        EXPECT_EQ(rep.prefixHits, kRequests - 1);
        EXPECT_EQ(rep.prefixAdoptedTokens, (kRequests - 1) * kPrefix);
        EXPECT_EQ(rep.prefillTokens, kPrefix + kRequests);
        EXPECT_EQ(rep.kvGatherSteady, 0u);
    }
    setThreadCount(0);
    clearPackedModelCache();
}

TEST(DecodeEngine, PrefixStreamsInvariantAcrossPageSizeAndOrder)
{
    clearPackedModelCache();
    const Workload w = makeSharedPrefixWorkload(5, 10, 64);
    DecodeConfig on = baseDecodeConfig();
    on.prefixMinTokens = 4;
    const auto ref = generate(w, on);

    // Page size is storage layout only — never token values.
    DecodeConfig tiny_pages = on;
    tiny_pages.kvArenaPageBytes = 1024;
    EXPECT_EQ(generate(w, tiny_pages), ref);
    DecodeConfig big_pages = on;
    big_pages.kvArenaPageBytes = 16384;
    EXPECT_EQ(generate(w, big_pages), ref);

    // Admission order decides who claims and who adopts; the adopted
    // pages are bit-identical to self-prefilled ones, so the streams
    // cannot move.
    EXPECT_EQ(generate(w, on, {4, 2, 0, 3, 1}), ref);
    EXPECT_EQ(generate(w, on, {1, 3, 0, 2, 4}), ref);
    clearPackedModelCache();
}

TEST(DecodeEngine, ArenaPressureThrottlesAdmissionNotTokens)
{
    clearPackedModelCache();
    const Workload w = makeSharedPrefixWorkload(6, 12, 64);
    DecodeConfig on = baseDecodeConfig();
    on.prefixMinTokens = 4;
    const auto ref = generate(w, on);

    // A budget of a few pages forces serialized admission and prefix
    // eviction under pressure — every request still completes with
    // bit-identical tokens (the budget is advisory and sheds cached
    // prefixes before stalling the queue).
    DecodeConfig tight = on;
    tight.kvArenaBytes = 8 * 4096;
    DecodeReport rep;
    EXPECT_EQ(generateWithReport(w, tight, rep), ref);
    EXPECT_EQ(rep.requests.size(), w.prompts.size());
    EXPECT_EQ(rep.kvGatherSteady, 0u);
    clearPackedModelCache();
}

TEST(DecodeEngine, SteadyStateDecodeNeverRegathers)
{
    clearPackedModelCache();
    const ModelProfile &model = modelByName("TinyLM-decode");
    DecodeConfig cfg = baseDecodeConfig();
    cfg.usePrefixCache = false;
    cfg.kv = {2, 4, 4};  // groups close every 4 generated tokens
    DecodeEngine engine(model, quantConfig(), cfg);
    engine.submit(std::vector<uint32_t>(6, 9), 40);
    engine.submit(std::vector<uint32_t>(5, 17), 40);
    const DecodeReport rep = engine.run();
    ASSERT_EQ(rep.requests.size(), 2u);

    // One first gather per (sequence, block); closes re-gather as the
    // window slides; pure-decode steps between closes extend the
    // persistent scratch in place — the per-step re-gather churn this
    // counter existed to catch must stay at zero.
    EXPECT_EQ(rep.kvGatherFirst, 2 * model.decode.blocks);
    EXPECT_GT(rep.kvGatherClose, 0u);
    EXPECT_EQ(rep.kvGatherSteady, 0u);

    // Capacity-accurate accounting: the page-granular footprint is
    // what admission budgets against, and it bounds the payload.
    EXPECT_GE(rep.kvCapacityBytes, rep.kvPackedBytes + rep.kvFpBytes);
    EXPECT_GT(rep.kvArenaPeakBytes, 0u);
    clearPackedModelCache();
}

TEST(DecodeEngineDeathTest, InvalidSubmissions)
{
    clearPackedModelCache();
    const ModelProfile &model = modelByName("TinyLM-decode");
    DecodeEngine engine(model, quantConfig(), baseDecodeConfig());
    EXPECT_DEATH(engine.submit({}, 4), "must carry a prompt");
    EXPECT_DEATH(engine.submit({1, 2}, 0), "must generate tokens");
    EXPECT_DEATH(engine.submit({1, 9999}, 4), "outside vocabulary");
    clearPackedModelCache();
}

} // namespace
} // namespace msq
