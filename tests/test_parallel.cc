/**
 * @file
 * Unit tests for the deterministic parallel substrate: parallelFor
 * coverage and bit-exactness across thread counts, nesting, exception
 * propagation, thread-count resolution — and the end-to-end guarantee
 * the substrate exists for: evaluateMethodOnModel produces identical
 * NMSE/EBW/PPL bytes on 1 and 8 threads.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "model/model_zoo.h"
#include "model/pipeline.h"
#include "quant/hessian.h"
#include "quant/rtn.h"

namespace msq {
namespace {

/** Restores the default thread count when a test exits. */
class ParallelTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        setThreadCount(0);
        clearHessianCache();
    }
};

/** A non-associative per-index computation: any reordering of the
 *  floating-point operations would change the bytes. */
double
chaoticValue(size_t i)
{
    double v = static_cast<double>(i) + 0.12345;
    for (int it = 0; it < 64; ++it)
        v = std::sin(v) * 1.7 + std::sqrt(v * v + 1.0) * 0.3;
    return v;
}

std::vector<double>
fillChaotic(size_t n, unsigned threads, size_t grain = 1)
{
    setThreadCount(threads);
    std::vector<double> out(n, 0.0);
    parallelFor(0, n, [&](size_t i) { out[i] = chaoticValue(i); }, grain);
    return out;
}

TEST_F(ParallelTest, CoversEveryIndexExactlyOnce)
{
    setThreadCount(8);
    std::vector<std::atomic<int>> hits(1000);
    for (auto &h : hits)
        h.store(0);
    parallelFor(0, hits.size(), [&](size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST_F(ParallelTest, BitIdenticalAcrossThreadCounts)
{
    // Plain serial loop as the reference.
    std::vector<double> serial(257);
    for (size_t i = 0; i < serial.size(); ++i)
        serial[i] = chaoticValue(i);

    EXPECT_EQ(serial, fillChaotic(serial.size(), 1));
    EXPECT_EQ(serial, fillChaotic(serial.size(), 2));
    EXPECT_EQ(serial, fillChaotic(serial.size(), 8));
    EXPECT_EQ(serial, fillChaotic(serial.size(), 8, /*grain=*/7));
}

TEST_F(ParallelTest, EmptyAndSingleRanges)
{
    setThreadCount(8);
    int calls = 0;
    parallelFor(5, 5, [&](size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    parallelFor(5, 6, [&](size_t i) {
        EXPECT_EQ(i, 5u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST_F(ParallelTest, NestedCallsRunInline)
{
    setThreadCount(8);
    std::vector<std::atomic<int>> hits(64 * 16);
    for (auto &h : hits)
        h.store(0);
    parallelFor(0, 64, [&](size_t outer) {
        // Inside a body the nested loop must degrade to a serial loop
        // on this thread (no deadlock, no oversubscription).
        parallelFor(0, 16, [&](size_t inner) {
            ++hits[outer * 16 + inner];
        });
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST_F(ParallelTest, ExceptionPropagatesToCaller)
{
    setThreadCount(4);
    EXPECT_THROW(parallelFor(0, 100,
                             [](size_t i) {
                                 if (i == 37)
                                     throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
    // The pool must stay usable after a failed job.
    std::vector<double> ok = fillChaotic(64, 4);
    EXPECT_EQ(ok, fillChaotic(64, 1));
}

TEST_F(ParallelTest, ReducedThreadCountIsHonored)
{
    // Grow the pool first, then shrink the requested count: the larger
    // pool must not all pile onto the smaller job.
    setThreadCount(8);
    parallelFor(0, 64, [](size_t) {});

    setThreadCount(2);
    std::mutex m;
    std::set<std::thread::id> ids;
    parallelFor(0, 256, [&](size_t) {
        // Enough per-index work that both threads take chunks.
        volatile double sink = 0.0;
        for (int it = 0; it < 2000; ++it)
            sink = sink + std::sqrt(static_cast<double>(it));
        std::lock_guard<std::mutex> lock(m);
        ids.insert(std::this_thread::get_id());
    });
    EXPECT_LE(ids.size(), 2u);
}

TEST_F(ParallelTest, ConcurrentTopLevelCallersSerialize)
{
    setThreadCount(4);
    std::vector<double> a(400, 0.0), b(400, 0.0);
    std::thread t1([&] {
        parallelFor(0, a.size(), [&](size_t i) { a[i] = chaoticValue(i); });
    });
    std::thread t2([&] {
        parallelFor(0, b.size(),
                    [&](size_t i) { b[i] = chaoticValue(i + 1000); });
    });
    t1.join();
    t2.join();
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], chaoticValue(i));
        EXPECT_EQ(b[i], chaoticValue(i + 1000));
    }
}

TEST_F(ParallelTest, ThreadCountResolution)
{
    setThreadCount(3);
    EXPECT_EQ(threadCount(), 3u);
    setThreadCount(0);
    EXPECT_GE(threadCount(), 1u);
}

/** A small model profile so the regression runs in well under a second. */
ModelProfile
tinyModel()
{
    ModelProfile m;
    m.name = "tiny";
    m.kind = ModelKind::Llm;
    m.layers = {{"q", 48, 40}, {"k", 48, 32}, {"ffn", 64, 48}};
    m.fpMetric = 6.0;
    m.seed = 77;
    return m;
}

TEST_F(ParallelTest, PipelineBitIdenticalSerialVsEightThreads)
{
    const ModelProfile model = tinyModel();
    QuantMethod method;
    method.name = "rtn";
    method.makeQuantizer = [] {
        return std::make_unique<RtnQuantizer>(4, 16);
    };
    method.actBits = 8;
    method.actGroup = 16;
    method.migrationAlpha = 0.5;

    PipelineConfig cfg;
    cfg.calibTokens = 32;
    cfg.evalTokens = 32;

    setThreadCount(1);
    const ModelEvalResult serial = evaluateMethodOnModel(model, method, cfg);
    clearHessianCache();

    setThreadCount(8);
    const ModelEvalResult parallel =
        evaluateMethodOnModel(model, method, cfg);

    // Bit-identical, not approximately equal: the per-layer RNG
    // streams and the serial in-order reduction make the thread count
    // unobservable in the output.
    EXPECT_EQ(serial.meanNmse, parallel.meanNmse);
    EXPECT_EQ(serial.meanEbw, parallel.meanEbw);
    EXPECT_EQ(serial.proxyPpl, parallel.proxyPpl);
    EXPECT_EQ(serial.proxyAcc, parallel.proxyAcc);
}

TEST_F(ParallelTest, HessianBitIdenticalSerialVsEightThreads)
{
    Rng rng(11);
    Matrix calib(40, 64);
    for (size_t r = 0; r < calib.rows(); ++r)
        for (size_t c = 0; c < calib.cols(); ++c)
            calib(r, c) = rng.gaussian();

    setThreadCount(1);
    const Matrix serial = buildHessian(calib);
    setThreadCount(8);
    const Matrix parallel = buildHessian(calib);

    ASSERT_EQ(serial.rows(), parallel.rows());
    ASSERT_EQ(serial.cols(), parallel.cols());
    for (size_t r = 0; r < serial.rows(); ++r)
        for (size_t c = 0; c < serial.cols(); ++c)
            EXPECT_EQ(serial(r, c), parallel(r, c));
}

} // namespace
} // namespace msq
