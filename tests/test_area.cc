/**
 * @file
 * Tests for the area model: Table 5's reported compute areas and
 * overhead fractions, compute-density ratios (MicroScopiQ ~2x OliVe,
 * >>10x GOBO), and the Fig. 17 scaling behaviour (ReCoN share shrinks
 * with array size).
 */

#include <gtest/gtest.h>

#include "accel/area.h"

namespace msq {
namespace {

TEST(Area, Table5MicroScopiQComputeArea)
{
    const AreaBreakdown a = microScopiQArea(64, 64, 1, 0);
    // Paper Table 5: 0.012 mm^2 for the 64x64 compute fabric.
    EXPECT_NEAR(a.computeAreaMm2(), 0.012, 0.002);
    // Compute overhead ~8.63%.
    EXPECT_NEAR(a.overheadFraction(), 0.0863, 0.02);
}

TEST(Area, Table5OliveComputeArea)
{
    const AreaBreakdown a = oliveArea(64, 64, 0);
    EXPECT_NEAR(a.computeAreaMm2(), 0.011, 0.002);
    EXPECT_NEAR(a.overheadFraction(), 0.099, 0.035);
}

TEST(Area, Table5GoboComputeArea)
{
    // Note: summing Table 5's published GOBO component areas gives
    // 0.156 mm^2, not the 0.216 mm^2 total the table prints — the
    // paper's own rows are inconsistent. We pin the component sum.
    const AreaBreakdown a = goboArea(64, 64, 0);
    EXPECT_NEAR(a.computeAreaMm2(), 0.156, 0.02);
    // GOBO's overhead is small because its PEs are huge.
    EXPECT_LT(a.overheadFraction(), 0.05);
}

TEST(Area, DensityRatios)
{
    const AreaBreakdown ms = microScopiQArea(64, 64, 1, 0);
    const AreaBreakdown ol = oliveArea(64, 64, 0);
    const AreaBreakdown gb = goboArea(64, 64, 0);

    // MicroScopiQ at bb=2: 2 MACs/PE/cycle; OliVe and GOBO: 1.
    const double d_ms = computeDensityTops(ms, 64 * 64, 2.0);
    const double d_ol = computeDensityTops(ol, 64 * 64, 1.0);
    const double d_gb = computeDensityTops(gb, 64 * 64, 1.0);

    EXPECT_NEAR(d_ms / d_ol, 2.0, 0.25);  // paper: ~2x
    EXPECT_GT(d_ms / d_gb, 10.0);         // paper: ~14x
}

TEST(Area, ReconShareShrinksWithArraySize)
{
    // Fig. 17: at 128x128 a single ReCoN is ~3% of compute area; at
    // 8x8 it dominates.
    auto recon_share = [](size_t dim) {
        const AreaBreakdown a = microScopiQArea(dim, dim, 1, 0);
        double recon = 0.0, total = 0.0;
        for (const AreaComponent &c : a.components) {
            total += c.totalUm2();
            if (c.name == "ReCoN" || c.name == "Sync buffer")
                recon += c.totalUm2();
        }
        return recon / total;
    };
    EXPECT_GT(recon_share(8), recon_share(16));
    EXPECT_GT(recon_share(16), recon_share(64));
    EXPECT_GT(recon_share(64), recon_share(128));
    EXPECT_LT(recon_share(128), 0.05);
}

TEST(Area, EightReconUnitsModestAtScale)
{
    // Fig. 17: 8 ReCoN units at 128x128 cost only ~11% extra area.
    const AreaBreakdown one = microScopiQArea(128, 128, 1, 0);
    const AreaBreakdown eight = microScopiQArea(128, 128, 8, 0);
    const double ratio = eight.computeAreaMm2() / one.computeAreaMm2();
    EXPECT_LT(ratio, 1.15);
    EXPECT_GT(ratio, 1.01);
}

TEST(Area, SramArea)
{
    AreaBreakdown a = microScopiQArea(64, 64, 1, 2.0 * 1024 * 1024);
    EXPECT_NEAR(a.sramAreaMm2(), 2.0 * kSramMm2PerMb, 1e-9);
    EXPECT_GT(a.totalAreaMm2(), a.computeAreaMm2());
}

} // namespace
} // namespace msq
