/**
 * @file
 * Packed-execution correctness: the scalar oracle (`referenceGemm`,
 * `matmulT`) straight from Fig. 5 bit-codes must reproduce the
 * dequantAll() + float reference bit for bit across outlier rates,
 * group sizes, bit widths, and prescaling; the blocked integer kernel
 * must agree with the oracle to the last ulps and be bit-identical
 * under every tile partition (the boundary grid and determinism sweep
 * live in test_packed_kernel.cc); the batching scheduler must not
 * change a request's bytes; and the pipeline's packed-exec mode must
 * leave every proxy metric unchanged.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "accel/functional.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/microscopiq.h"
#include "serve/engine.h"
#include "serve/packed_exec.h"
#include "serve/weight_cache.h"

namespace msq {
namespace {

Matrix
fmWeights(size_t k, size_t o, Rng &rng, double outlier_rate)
{
    Matrix w(k, o);
    for (size_t r = 0; r < k; ++r) {
        for (size_t c = 0; c < o; ++c) {
            double v = rng.gaussian(0.0, 0.02);
            if (rng.bernoulli(outlier_rate))
                v = rng.uniform(0.15, 0.5) * (rng.bernoulli(0.5) ? 1 : -1);
            w(r, c) = v;
        }
    }
    return w;
}

Matrix
randomActs(size_t k, size_t tokens, Rng &rng)
{
    Matrix x(k, tokens);
    for (size_t r = 0; r < k; ++r)
        for (size_t t = 0; t < tokens; ++t)
            x(r, t) = rng.gaussian(0.0, 1.0);
    return x;
}

void
expectBitIdentical(const Matrix &got, const Matrix &want)
{
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    for (size_t r = 0; r < got.rows(); ++r)
        for (size_t c = 0; c < got.cols(); ++c)
            ASSERT_EQ(got(r, c), want(r, c))
                << "mismatch at (" << r << "," << c << ")";
}

/** The blocked kernel folds the same exact terms as the oracle in a
 *  different (hierarchical) order; outputs agree to the last ulps. */
void
expectUlpClose(const Matrix &got, const Matrix &want)
{
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    const double tol = std::max(want.maxAbs(), 1.0) * 1e-12;
    for (size_t r = 0; r < got.rows(); ++r)
        for (size_t c = 0; c < got.cols(); ++c)
            ASSERT_NEAR(got(r, c), want(r, c), tol)
                << "mismatch at (" << r << "," << c << ")";
}

/** Quantize a random layer and check every packed GEMM path. */
void
expectPackedExecExact(const MsqConfig &cfg, size_t k, size_t o,
                      size_t tokens, double outlier_rate, uint64_t seed)
{
    Rng rng(seed);
    const Matrix w = fmWeights(k, o, rng, outlier_rate);
    const Matrix x = randomActs(k, tokens, rng);

    MicroScopiQQuantizer quantizer(cfg);
    const PackedLayer layer = quantizer.quantizePacked(w, Matrix());
    ASSERT_TRUE(PackedExecPlan::executable(cfg));
    const PackedExecPlan plan(layer);
    const Matrix wq = layer.dequantAll();

    // Real-valued activations: bit-identical to the float reference.
    expectBitIdentical(plan.matmulT(x), wq.transposedMatmul(x));

    // Quantized activations: the scalar oracle is bit-identical to the
    // dequantized float GEMM; the blocked integer kernel agrees with
    // the oracle to the last ulps.
    const QuantizedActs acts(x, 8, 32);
    const Matrix oracle = plan.referenceGemm(acts);
    expectBitIdentical(oracle, wq.transposedMatmul(acts.dequantAll()));
    expectUlpClose(plan.gemm(acts), oracle);
}

TEST(PackedExec, MatchesReferenceNoOutliers)
{
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    expectPackedExecExact(cfg, 32, 64, 4, 0.0, 1);
}

TEST(PackedExec, MatchesReferenceOutlierModeNone)
{
    MsqConfig cfg;
    cfg.outlierMode = OutlierMode::None;
    cfg.hessianCompensation = false;
    expectPackedExecExact(cfg, 32, 64, 4, 0.05, 2);
}

class PackedExecSweep
    : public ::testing::TestWithParam<
          std::tuple<unsigned, double, size_t, bool>>
{
};

TEST_P(PackedExecSweep, BitIdentical)
{
    const auto [bits, rate, micro, prescale] = GetParam();
    MsqConfig cfg;
    cfg.inlierBits = bits;
    cfg.microBlock = micro;
    cfg.macroBlock = micro * 8;
    cfg.prescaleOutliers = prescale;
    cfg.hessianCompensation = false;
    expectPackedExecExact(cfg, 48, 160, 5, rate,
                          7000 + bits * 100 +
                              static_cast<uint64_t>(rate * 1000) + micro +
                              (prescale ? 1 : 0));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PackedExecSweep,
    ::testing::Combine(::testing::Values(2u, 4u),
                       ::testing::Values(0.0, 0.03, 0.10),
                       ::testing::Values(4u, 8u, 16u),
                       ::testing::Bool()));

TEST(PackedExec, HessianCompensatedLayer)
{
    MsqConfig cfg;
    Rng rng(11);
    const Matrix w = fmWeights(64, 128, rng, 0.04);
    const Matrix calib = randomActs(64, 256, rng);
    const Matrix x = randomActs(64, 3, rng);

    MicroScopiQQuantizer quantizer(cfg);
    const PackedLayer layer = quantizer.quantizePacked(w, calib);
    const PackedExecPlan plan(layer);
    expectBitIdentical(plan.matmulT(x),
                       layer.dequantAll().transposedMatmul(x));
}

TEST(PackedExec, MatchesFunctionalAccelerator)
{
    // The packed-exec integer path and the PE/ReCoN functional model
    // must agree to the functional model's own tolerance: both claim
    // the same integer arithmetic.
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    Rng rng(12);
    const Matrix w = fmWeights(64, 128, rng, 0.05);
    const Matrix x = randomActs(64, 4, rng);

    MicroScopiQQuantizer quantizer(cfg);
    const PackedLayer layer = quantizer.quantizePacked(w, Matrix());
    const QuantizedActs acts(x, 8, 128);

    const PackedExecPlan plan(layer);
    const Matrix serve_out = plan.gemm(acts);       // outputs x tokens
    FunctionalAccelerator accel((AccelConfig()));
    const Matrix hw = accel.gemm(layer, acts);      // tokens x outputs

    ASSERT_EQ(serve_out.rows(), hw.cols());
    ASSERT_EQ(serve_out.cols(), hw.rows());
    const double tol = std::max(hw.maxAbs(), 1.0) * 1e-9;
    for (size_t o = 0; o < serve_out.rows(); ++o)
        for (size_t m = 0; m < serve_out.cols(); ++m)
            ASSERT_NEAR(serve_out(o, m), hw(m, o), tol);
}

TEST(PackedExec, RangePartitionInvariance)
{
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    Rng rng(13);
    const Matrix w = fmWeights(40, 96, rng, 0.06);
    const Matrix x = randomActs(40, 11, rng);

    MicroScopiQQuantizer quantizer(cfg);
    const PackedExecPlan plan(quantizer.quantizePacked(w, Matrix()));

    const Matrix full = plan.matmulT(x);
    Matrix pieced(96, 11);
    plan.matmulTRange(x, 0, 3, pieced);
    plan.matmulTRange(x, 3, 4, pieced);
    plan.matmulTRange(x, 4, 11, pieced);
    expectBitIdentical(pieced, full);

    const QuantizedActs acts(x, 8, 16);
    const Matrix qfull = plan.gemm(acts);
    Matrix qpieced(96, 11);
    plan.gemmRange(acts, 0, 5, qpieced);
    plan.gemmRange(acts, 5, 11, qpieced);
    expectBitIdentical(qpieced, qfull);

    // 2D tiles, including column splits that straddle macro-blocks.
    Matrix qtiled(96, 11);
    plan.gemmBlock(acts, 0, 50, 0, 7, qtiled);
    plan.gemmBlock(acts, 50, 96, 0, 7, qtiled);
    plan.gemmBlock(acts, 0, 13, 7, 11, qtiled);
    plan.gemmBlock(acts, 13, 96, 7, 11, qtiled);
    expectBitIdentical(qtiled, qfull);
}

TEST(PackedExec, AblationModesNotExecutable)
{
    MsqConfig cfg;
    cfg.outlierMode = OutlierMode::MxFpCoarse;
    EXPECT_FALSE(PackedExecPlan::executable(cfg));
    cfg.outlierMode = OutlierMode::MxInt;
    EXPECT_FALSE(PackedExecPlan::executable(cfg));
    cfg.outlierMode = OutlierMode::MxFpShared;
    cfg.pruneAndRedistribute = false;
    EXPECT_FALSE(PackedExecPlan::executable(cfg));
}

TEST(PackedExec, TermCountMatchesLayer)
{
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    Rng rng(14);
    const Matrix w = fmWeights(32, 64, rng, 0.05);
    MicroScopiQQuantizer quantizer(cfg);
    const PackedLayer layer = quantizer.quantizePacked(w, Matrix());
    const PackedExecPlan plan(layer);

    size_t outliers = 0;
    for (size_t r = 0; r < layer.rows(); ++r)
        for (size_t ub = 0; ub < layer.microPerRow(); ++ub)
            outliers += layer.micro(r, ub).perm.size();
    EXPECT_EQ(plan.outlierCount(), outliers);
    EXPECT_LE(plan.termCount(), layer.rows() * layer.cols());
    EXPECT_GT(plan.termCount(), 0u);
}

/** A tiny hermetic profile so serving tests stay fast. */
ModelProfile
tinyModel()
{
    ModelProfile p;
    p.name = "tiny-serve-test";
    p.kind = ModelKind::Llm;
    p.layers = {{"proj_a", 64, 96}, {"proj_b", 96, 64}};
    p.weights = {0.02, 8.0, 0.02, 0.001, 6.0, 14.0};
    p.acts = {1.0, 0.02, 8.0};
    p.fpMetric = 6.0;
    p.seed = 42;
    return p;
}

TEST(WeightCache, SharesDeployments)
{
    clearPackedModelCache();
    const ModelProfile model = tinyModel();
    MsqConfig cfg;
    cfg.hessianCompensation = false;

    const PackedModelPtr a = getPackedModel(model, cfg, 32);
    const PackedModelPtr b = getPackedModel(model, cfg, 32);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(packedModelCacheSize(), 1u);
    EXPECT_EQ(a->layers.size(), model.layers.size());
    EXPECT_EQ(a->plans.size(), model.layers.size());
    EXPECT_GT(a->termsPerToken, 0u);
    EXPECT_GT(a->meanEbw, 0.0);

    // A different quantization config is a different deployment.
    MsqConfig cfg4 = cfg;
    cfg4.inlierBits = 4;
    const PackedModelPtr c = getPackedModel(model, cfg4, 32);
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(packedModelCacheSize(), 2u);

    clearPackedModelCache();
    EXPECT_EQ(packedModelCacheSize(), 0u);
}

TEST(WeightCache, ExecPlansAreContentAddressed)
{
    clearExecPlanCache();
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    Rng rng(77);
    const Matrix w = fmWeights(32, 64, rng, 0.05);
    const Matrix w2 = fmWeights(32, 64, rng, 0.05);

    // Two independently quantized but bit-identical layers share one
    // decoded plan; different content does not.
    MicroScopiQQuantizer q1(cfg);
    MicroScopiQQuantizer q2(cfg);
    MicroScopiQQuantizer q3(cfg);
    const PackedLayer a = q1.quantizePacked(w, Matrix());
    const PackedLayer b = q2.quantizePacked(w, Matrix());
    const PackedLayer c = q3.quantizePacked(w2, Matrix());
    const PackedExecPlanPtr pa = getExecPlan(a);
    EXPECT_EQ(pa.get(), getExecPlan(b).get());
    EXPECT_EQ(execPlanCacheSize(), 1u);
    const PackedExecPlanPtr pc = getExecPlan(c);
    EXPECT_NE(pa.get(), pc.get());
    EXPECT_EQ(execPlanCacheSize(), 2u);

    // LRU eviction keeps the most recently used entry; evicted plans
    // stay alive through their shared_ptr and are simply re-decoded.
    setExecPlanCacheCapacity(1);
    EXPECT_EQ(execPlanCacheSize(), 1u);
    EXPECT_EQ(pc.get(), getExecPlan(c).get());
    EXPECT_NE(pa.get(), getExecPlan(a).get());
    EXPECT_EQ(pa->termCount(), getExecPlan(a)->termCount());

    setExecPlanCacheCapacity(64);
    clearExecPlanCache();
    EXPECT_EQ(execPlanCacheSize(), 0u);
}

TEST(WeightCache, DeploymentsShareMemoizedPlans)
{
    // Two deployments whose packed bytes coincide (the calibration
    // budget is unused without Hessian compensation) decode each
    // layer's plan once.
    clearPackedModelCache();
    clearExecPlanCache();
    const ModelProfile model = tinyModel();
    MsqConfig cfg;
    cfg.hessianCompensation = false;

    const PackedModelPtr a = getPackedModel(model, cfg, 32);
    const PackedModelPtr b = getPackedModel(model, cfg, 64);
    EXPECT_NE(a.get(), b.get());
    ASSERT_EQ(a->plans.size(), b->plans.size());
    for (size_t li = 0; li < a->plans.size(); ++li)
        EXPECT_EQ(a->plans[li].get(), b->plans[li].get());
    EXPECT_EQ(execPlanCacheSize(), model.layers.size());

    clearPackedModelCache();
    clearExecPlanCache();
}

TEST(ServeEngine, BatchingInvariance)
{
    clearPackedModelCache();
    const ModelProfile model = tinyModel();
    MsqConfig cfg;
    cfg.hessianCompensation = false;

    ServeConfig single;
    single.maxBatchRequests = 1;
    ServeConfig batched;
    batched.maxBatchRequests = 8;
    batched.tileTokens = 4;

    ServeEngine engine_s(model, cfg, single);
    ServeEngine engine_b(model, cfg, batched);
    for (uint64_t r = 0; r < 12; ++r) {
        engine_s.submit(3 + r % 4, 100 + r);
        engine_b.submit(3 + r % 4, 100 + r);
    }
    const ServeReport rep_s = engine_s.drain();
    const ServeReport rep_b = engine_b.drain();

    ASSERT_EQ(rep_s.requests.size(), 12u);
    ASSERT_EQ(rep_b.requests.size(), 12u);
    EXPECT_EQ(rep_s.batches, 12u);
    EXPECT_LT(rep_b.batches, 12u);
    EXPECT_EQ(rep_s.tokens, rep_b.tokens);
    // Same request => same output bytes, whatever the batching.
    for (size_t i = 0; i < rep_s.requests.size(); ++i) {
        EXPECT_EQ(rep_s.requests[i].id, rep_b.requests[i].id);
        EXPECT_EQ(rep_s.requests[i].outputCheck,
                  rep_b.requests[i].outputCheck);
    }
    clearPackedModelCache();
}

TEST(ServeEngine, ThreadCountInvariance)
{
    clearPackedModelCache();
    const ModelProfile model = tinyModel();
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    ServeConfig scfg;
    scfg.maxBatchRequests = 8;
    scfg.tileTokens = 2;

    std::vector<double> checks[2];
    for (int pass = 0; pass < 2; ++pass) {
        setThreadCount(pass == 0 ? 1 : 4);
        ServeEngine engine(model, cfg, scfg);
        for (uint64_t r = 0; r < 6; ++r)
            engine.submit(5, 500 + r);
        for (const RequestRecord &rec : engine.drain().requests)
            checks[pass].push_back(rec.outputCheck);
    }
    setThreadCount(0);
    ASSERT_EQ(checks[0].size(), checks[1].size());
    for (size_t i = 0; i < checks[0].size(); ++i)
        EXPECT_EQ(checks[0][i], checks[1][i]);
    clearPackedModelCache();
}

TEST(ServeEngine, ReportAccounting)
{
    clearPackedModelCache();
    const ModelProfile model = tinyModel();
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    ServeConfig scfg;
    scfg.maxBatchRequests = 4;
    scfg.maxBatchTokens = 16;

    ServeEngine engine(model, cfg, scfg);
    for (uint64_t r = 0; r < 10; ++r)
        engine.submit(4, r);
    EXPECT_EQ(engine.pending(), 10u);
    const ServeReport rep = engine.drain();
    EXPECT_EQ(engine.pending(), 0u);

    EXPECT_EQ(rep.requests.size(), 10u);
    EXPECT_EQ(rep.tokens, 40u);
    // 4 tokens/request, 16-token cap => 4 requests/batch => 3 batches.
    EXPECT_EQ(rep.batches, 3u);
    EXPECT_GE(rep.p95Ms, rep.p50Ms);
    EXPECT_GE(rep.p99Ms, rep.p95Ms);
    EXPECT_GE(rep.maxMs, rep.p99Ms);
    EXPECT_GT(rep.tokensPerSec, 0.0);
    EXPECT_GT(rep.macsPerSec, 0.0);
    clearPackedModelCache();
}

TEST(PipelinePackedExec, ProxyMetricsUnchanged)
{
    const ModelProfile model = tinyModel();

    QuantMethod method;
    method.name = "MicroScopiQ";
    method.makeQuantizer = [] {
        MsqConfig c;
        c.inlierBits = 2;
        return std::make_unique<MicroScopiQQuantizer>(c);
    };

    PipelineConfig dense;
    dense.calibTokens = 64;
    dense.evalTokens = 32;
    PipelineConfig packed = dense;
    packed.packedExec = packedExecBackend();

    const ModelEvalResult a = evaluateMethodOnModel(model, method, dense);
    const ModelEvalResult b = evaluateMethodOnModel(model, method, packed);
    EXPECT_EQ(a.meanNmse, b.meanNmse);
    EXPECT_EQ(a.meanEbw, b.meanEbw);
    EXPECT_EQ(a.proxyPpl, b.proxyPpl);
    EXPECT_EQ(a.proxyAcc, b.proxyAcc);
}

TEST(PipelinePackedExec, QuantizedActsMetricsUnchanged)
{
    const ModelProfile model = tinyModel();

    QuantMethod method;
    method.name = "MicroScopiQ";
    method.makeQuantizer = [] {
        return std::make_unique<MicroScopiQQuantizer>(MsqConfig{});
    };
    method.actBits = 8;
    method.actGroup = 32;

    PipelineConfig dense;
    dense.calibTokens = 64;
    dense.evalTokens = 32;
    PipelineConfig packed = dense;
    packed.packedExec = packedExecBackend();

    const ModelEvalResult a = evaluateMethodOnModel(model, method, dense);
    const ModelEvalResult b = evaluateMethodOnModel(model, method, packed);
    EXPECT_EQ(a.meanNmse, b.meanNmse);
    EXPECT_EQ(a.proxyPpl, b.proxyPpl);
}

TEST(PipelinePackedExec, NonExecutableConfigFallsBack)
{
    const ModelProfile model = tinyModel();

    // The coarse-outlier ablation has no packed execution; the backend
    // must signal it and the pipeline must produce the dense result.
    QuantMethod method;
    method.name = "MicroScopiQ-coarse";
    method.makeQuantizer = [] {
        MsqConfig c;
        c.outlierMode = OutlierMode::MxFpCoarse;
        return std::make_unique<MicroScopiQQuantizer>(c);
    };

    PipelineConfig dense;
    dense.calibTokens = 64;
    dense.evalTokens = 32;
    PipelineConfig packed = dense;
    packed.packedExec = packedExecBackend();

    const ModelEvalResult a = evaluateMethodOnModel(model, method, dense);
    const ModelEvalResult b = evaluateMethodOnModel(model, method, packed);
    EXPECT_EQ(a.meanNmse, b.meanNmse);
    EXPECT_EQ(a.proxyPpl, b.proxyPpl);
}

} // namespace
} // namespace msq
