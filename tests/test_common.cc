/**
 * @file
 * Unit tests for the common substrate: RNG determinism and distribution
 * sanity, matrix algebra, statistics, bit-stream round trips, and the
 * table printer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bitstream.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace msq {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 16; ++i)
        any_diff |= a.next() != b.next();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(123);
    std::vector<double> xs(50000);
    for (double &x : xs)
        x = rng.gaussian();
    const SampleSummary s = summarize(xs);
    EXPECT_NEAR(s.mean, 0.0, 0.03);
    EXPECT_NEAR(s.stddev, 1.0, 0.03);
    EXPECT_NEAR(s.kurtosis, 0.0, 0.15);
}

TEST(Rng, StudentTHeavyTails)
{
    Rng rng(5);
    std::vector<double> xs(50000);
    for (double &x : xs)
        x = rng.studentT(5.0);
    // Excess kurtosis of t(5) is 6; sampling noise is large, so just
    // check it is clearly heavier-tailed than a Gaussian.
    EXPECT_GT(summarize(xs).kurtosis, 1.0);
}

TEST(Rng, SampleWithoutReplacementDistinct)
{
    Rng rng(9);
    const auto idx = rng.sampleWithoutReplacement(100, 40);
    EXPECT_EQ(idx.size(), 40u);
    std::set<size_t> unique(idx.begin(), idx.end());
    EXPECT_EQ(unique.size(), 40u);
    for (size_t i : idx)
        EXPECT_LT(i, 100u);
}

TEST(Matrix, MatmulIdentity)
{
    Matrix a(3, 3);
    for (size_t i = 0; i < 3; ++i)
        a(i, i) = 1.0;
    Matrix b(3, 2);
    b(0, 0) = 1;
    b(1, 1) = 2;
    b(2, 0) = 3;
    const Matrix c = a.matmul(b);
    EXPECT_DOUBLE_EQ(c(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 2.0);
    EXPECT_DOUBLE_EQ(c(2, 0), 3.0);
}

TEST(Matrix, TransposedMatmulAgrees)
{
    Rng rng(11);
    Matrix a(4, 5), b(4, 3);
    for (size_t r = 0; r < 4; ++r) {
        for (size_t c = 0; c < 5; ++c)
            a(r, c) = rng.gaussian();
        for (size_t c = 0; c < 3; ++c)
            b(r, c) = rng.gaussian();
    }
    const Matrix direct = a.transposed().matmul(b);
    const Matrix fused = a.transposedMatmul(b);
    for (size_t r = 0; r < 5; ++r)
        for (size_t c = 0; c < 3; ++c)
            EXPECT_NEAR(direct(r, c), fused(r, c), 1e-12);
}

TEST(Matrix, CholeskyInverseRecoversIdentity)
{
    Rng rng(3);
    const size_t n = 16;
    // Build an SPD matrix A = B B^T + n I.
    Matrix b(n, n);
    for (size_t r = 0; r < n; ++r)
        for (size_t c = 0; c < n; ++c)
            b(r, c) = rng.gaussian();
    Matrix a = b.matmul(b.transposed());
    for (size_t i = 0; i < n; ++i)
        a(i, i) += static_cast<double>(n);

    const Matrix inv = choleskyInverse(a);
    const Matrix prod = a.matmul(inv);
    for (size_t r = 0; r < n; ++r)
        for (size_t c = 0; c < n; ++c)
            EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-8);
}

TEST(Matrix, NormalizedError)
{
    Matrix ref(2, 2);
    ref(0, 0) = 2.0;
    Matrix same = ref;
    EXPECT_DOUBLE_EQ(same.normalizedErrorTo(ref), 0.0);
    Matrix off = ref;
    off(0, 0) = 0.0;
    EXPECT_DOUBLE_EQ(off.normalizedErrorTo(ref), 1.0);
}

TEST(Stats, StddevUsesSampleDefinitionEverywhere)
{
    // {1, 2, 3}: sample (n - 1) stddev is exactly 1; the population
    // definition would give sqrt(2/3). Both entry points must agree
    // on the sample convention documented in stats.h.
    const std::vector<double> v = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(stddev(v), 1.0);
    EXPECT_DOUBLE_EQ(summarize(v).stddev, 1.0);
}

TEST(Stats, StddevDegenerateSamples)
{
    EXPECT_DOUBLE_EQ(stddev({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({4.2}), 0.0);
    EXPECT_DOUBLE_EQ(summarize({4.2}).stddev, 0.0);
}

TEST(Stats, PercentileInterpolates)
{
    std::vector<double> v = {1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
    EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Stats, GeomeanKnown)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Stats, HistogramBinning)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.5);
    h.add(100.0);  // clamped into the last bin
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(9), 2u);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
}

TEST(BitStream, RoundTripMixedWidths)
{
    BitWriter w;
    w.write(0b101, 3);
    w.write(0xdeadbeef, 32);
    w.write(1, 1);
    w.write(0x3f, 6);
    EXPECT_EQ(w.bitCount(), 42u);
    const auto bytes = w.take();

    BitReader r(bytes);
    EXPECT_EQ(r.read(3), 0b101u);
    EXPECT_EQ(r.read(32), 0xdeadbeefu);
    EXPECT_EQ(r.read(1), 1u);
    EXPECT_EQ(r.read(6), 0x3fu);
}

TEST(BitStream, SignExtend)
{
    EXPECT_EQ(signExtend(0b11, 2), -1);
    EXPECT_EQ(signExtend(0b10, 2), -2);
    EXPECT_EQ(signExtend(0b01, 2), 1);
    EXPECT_EQ(signExtend(0b0111, 4), 7);
    EXPECT_EQ(signExtend(0b1000, 4), -8);
    EXPECT_EQ(signExtend(0xff, 8), -1);
}

TEST(Table, RendersAlignedColumns)
{
    Table t("Demo");
    t.setHeader({"a", "long_header"});
    t.addRow({"1", "2"});
    t.addSeparator();
    t.addRow({"333", "4"});
    const std::string s = t.render();
    EXPECT_NE(s.find("Demo"), std::string::npos);
    EXPECT_NE(s.find("long_header"), std::string::npos);
    EXPECT_NE(s.find("333"), std::string::npos);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(Table::fmtInt(1234567), "1,234,567");
    EXPECT_EQ(Table::fmtInt(-1000), "-1,000");
}

} // namespace
} // namespace msq
