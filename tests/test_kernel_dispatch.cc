/**
 * @file
 * Cross-ISA bit-identity harness for the dispatched SIMD kernels
 * (common/simd_dispatch.h, serve/kernel_dispatch.h,
 * quant/span_kernels.h): every kernel path usable on the host is
 * forced in turn and its outputs diffed BYTE for byte against the
 * forced-scalar oracle —
 *
 *  - the blocked serving GEMM over the full inlierBits x actBits x
 *    macro-block x ragged-shape grid of test_packed_kernel.cc,
 *  - the int32 overflow boundary (tiles just inside the bound stay on
 *    the integer path; spreads beyond it take the per-term fallback)
 *    and all-pruned tiles,
 *  - channel-major activation quantization (codes and scale exponents),
 *
 * plus the selection machinery itself: name/parse round trips, the
 * usable-path invariants, and override set/reset semantics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "accel/int_dequant.h"
#include "common/rng.h"
#include "common/simd_dispatch.h"
#include "core/microscopiq.h"
#include "quant/act_quant.h"
#include "serve/kernel_dispatch.h"
#include "serve/packed_exec.h"

namespace msq {
namespace {

/** Forces one kernel path for a scope; restores the default on exit. */
class PathGuard
{
  public:
    explicit PathGuard(KernelPath path) { setKernelPath(path); }
    ~PathGuard() { resetKernelPath(); }
    PathGuard(const PathGuard &) = delete;
    PathGuard &operator=(const PathGuard &) = delete;
};

Matrix
fmWeights(size_t k, size_t o, Rng &rng, double outlier_rate)
{
    Matrix w(k, o);
    for (size_t r = 0; r < k; ++r) {
        for (size_t c = 0; c < o; ++c) {
            double v = rng.gaussian(0.0, 0.02);
            if (rng.bernoulli(outlier_rate))
                v = rng.uniform(0.15, 0.5) * (rng.bernoulli(0.5) ? 1 : -1);
            w(r, c) = v;
        }
    }
    return w;
}

Matrix
randomActs(size_t k, size_t tokens, Rng &rng)
{
    Matrix x(k, tokens);
    for (size_t r = 0; r < k; ++r)
        for (size_t t = 0; t < tokens; ++t)
            x(r, t) = rng.gaussian(0.0, 1.0);
    return x;
}

void
expectBitIdentical(const Matrix &got, const Matrix &want,
                   KernelPath path)
{
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    for (size_t r = 0; r < got.rows(); ++r)
        for (size_t c = 0; c < got.cols(); ++c)
            ASSERT_EQ(got(r, c), want(r, c))
                << "path " << kernelPathName(path) << " mismatch at ("
                << r << "," << c << ")";
}

/**
 * gemm() under every usable path against the forced-scalar oracle.
 * Token counts are chosen by callers to cover the kernel's full-width
 * (32), half-width (16), and ragged sub-tile shapes.
 */
void
expectGemmPathsAgree(const PackedExecPlan &plan, const QuantizedActs &acts)
{
    Matrix oracle;
    {
        PathGuard guard(KernelPath::Scalar);
        oracle = plan.gemm(acts);
    }
    for (KernelPath path : usableKernelPaths()) {
        PathGuard guard(path);
        expectBitIdentical(plan.gemm(acts), oracle, path);
    }
}

TEST(KernelDispatch, NamesParseRoundTrip)
{
    for (int p = 0; p < kKernelPathCount; ++p) {
        const KernelPath path = static_cast<KernelPath>(p);
        KernelPath parsed = KernelPath::Neon;
        ASSERT_TRUE(parseKernelPath(kernelPathName(path), parsed));
        EXPECT_EQ(parsed, path);
    }
    KernelPath parsed;
    EXPECT_FALSE(parseKernelPath("", parsed));
    EXPECT_FALSE(parseKernelPath("avx512", parsed));
    EXPECT_FALSE(parseKernelPath("AVX2", parsed));
}

TEST(KernelDispatch, UsablePathInvariants)
{
    // Scalar is always compiled, supported, and first in preference.
    EXPECT_TRUE(kernelPathCompiled(KernelPath::Scalar));
    EXPECT_TRUE(kernelPathUsable(KernelPath::Scalar));
    const std::vector<KernelPath> usable = usableKernelPaths();
    ASSERT_FALSE(usable.empty());
    EXPECT_EQ(usable.front(), KernelPath::Scalar);
    for (size_t i = 0; i + 1 < usable.size(); ++i)
        EXPECT_LT(static_cast<int>(usable[i]),
                  static_cast<int>(usable[i + 1]));
    for (KernelPath path : usable) {
        EXPECT_TRUE(kernelPathCompiled(path));
        EXPECT_TRUE(kernelPathUsable(path));
        // Every usable path has a complete ops table.
        const KernelOps &ops = kernelOpsFor(path);
        EXPECT_EQ(ops.path, path);
        EXPECT_NE(ops.accumulateRun, nullptr);
    }
#if defined(__x86_64__) && defined(__GNUC__)
    EXPECT_TRUE(kernelPathUsable(KernelPath::Sse2));
    EXPECT_FALSE(kernelPathCompiled(KernelPath::Neon));
#endif
#if defined(__aarch64__) && defined(__GNUC__)
    EXPECT_TRUE(kernelPathUsable(KernelPath::Neon));
    EXPECT_FALSE(kernelPathCompiled(KernelPath::Avx2));
#endif
}

TEST(KernelDispatch, OverrideSetAndReset)
{
    const KernelPath before = activeKernelPath();
    EXPECT_TRUE(kernelPathUsable(before));
    {
        PathGuard guard(KernelPath::Scalar);
        EXPECT_EQ(activeKernelPath(), KernelPath::Scalar);
        EXPECT_EQ(activeKernelOps().path, KernelPath::Scalar);
    }
    EXPECT_EQ(activeKernelPath(), before);
}

TEST(KernelDispatch, ForcedPathGemmGrid)
{
    // The full kernel boundary grid of test_packed_kernel.cc, replayed
    // under every usable path: inlier bits x act bits x macro-block
    // width x ragged shapes (columns straddling macro-/micro-blocks,
    // rows below/at/straddling the 128-row k-panel). 37 tokens cover
    // the 32-token full-width sub-tile plus a 5-token ragged tail.
    struct Shape
    {
        size_t rows, cols;
    };
    const Shape shapes[] = {{16, 8}, {53, 97}, {64, 96}, {128, 100},
                            {130, 97}};
    const unsigned bb_grid[] = {2, 4};
    const unsigned ab_grid[] = {2, 4, 8};
    const size_t mab_grid[] = {32, 64};
    uint64_t seed = 4200;
    for (const Shape &shape : shapes) {
        for (size_t mab : mab_grid) {
            for (unsigned bb : bb_grid) {
                MsqConfig cfg;
                cfg.inlierBits = bb;
                cfg.macroBlock = mab;
                cfg.microBlock = 8;
                cfg.hessianCompensation = false;
                Rng rng(++seed);
                const Matrix w = fmWeights(shape.rows, shape.cols, rng,
                                           0.05);
                MicroScopiQQuantizer quantizer(cfg);
                const PackedExecPlan plan(
                    quantizer.quantizePacked(w, Matrix()));
                const Matrix x = randomActs(shape.rows, 37, rng);
                for (unsigned ab : ab_grid)
                    expectGemmPathsAgree(plan, QuantizedActs(x, ab, 32));
            }
        }
    }
}

TEST(KernelDispatch, HalfWidthAndRaggedTokenTiles)
{
    // 16 tokens select the kernel's dedicated half-width sub-tile; 11
    // and 3 exercise the generic ragged shape (including widths below
    // one SSE2 step).
    MsqConfig cfg;
    cfg.macroBlock = 32;
    cfg.microBlock = 8;
    cfg.hessianCompensation = false;
    Rng rng(77);
    const Matrix w = fmWeights(130, 100, rng, 0.05);
    MicroScopiQQuantizer quantizer(cfg);
    const PackedExecPlan plan(quantizer.quantizePacked(w, Matrix()));
    for (size_t tokens : {16u, 11u, 3u, 1u}) {
        const Matrix x = randomActs(130, tokens, rng);
        expectGemmPathsAgree(plan, QuantizedActs(x, 8, 32));
    }
}

/** Row k scaled by 2^(k % modulus): drives the panel exponent spread. */
Matrix
rampWeights(size_t rows, size_t cols, int modulus, Rng &rng)
{
    Matrix w(rows, cols);
    for (size_t r = 0; r < rows; ++r) {
        const double scale = std::ldexp(1.0, static_cast<int>(r) % modulus);
        for (size_t c = 0; c < cols; ++c)
            w(r, c) = scale * (rng.bernoulli(0.5) ? 1.0 : -1.0);
    }
    return w;
}

/** Max-magnitude activations (codes saturate at +/- qmax). */
Matrix
saturatedActs(size_t rows, size_t tokens, Rng &rng)
{
    Matrix x(rows, tokens);
    for (size_t r = 0; r < rows; ++r)
        for (size_t t = 0; t < tokens; ++t)
            x(r, t) = 8.0 * (rng.bernoulli(0.5) ? 1.0 : -1.0);
    return x;
}

TEST(KernelDispatch, OverflowBoundaryAcrossPaths)
{
    // Tiles driven to the int32 admission bound (saturated codes, max
    // exponent spread the bound accepts) and far beyond it (forcing
    // the exact per-term fallback): every path must reproduce the
    // scalar bytes on both sides of the boundary.
    for (unsigned bb : {2u, 4u}) {
        MsqConfig cfg;
        cfg.inlierBits = bb;
        cfg.macroBlock = 32;
        cfg.microBlock = 8;
        cfg.outlierMode = OutlierMode::None;
        cfg.hessianCompensation = false;
        MicroScopiQQuantizer quantizer(cfg);
        Rng rng(8800 + bb);

        const int bound = std::min(maxPanelShift(bb, 8, 128),
                                   14 - static_cast<int>(bb - 1));
        ASSERT_GE(bound, 10);
        const PackedExecPlan near_plan(quantizer.quantizePacked(
            rampWeights(128, 64, bound + 1, rng), Matrix()));
        EXPECT_GT(near_plan.blockStats().intTiles, 0u);
        EXPECT_EQ(near_plan.blockStats().scalarTiles, 0u);
        const Matrix near_acts = saturatedActs(128, 37, rng);
        for (unsigned ab : {2u, 4u, 8u})
            expectGemmPathsAgree(near_plan,
                                 QuantizedActs(near_acts, ab, 32));

        const PackedExecPlan over_plan(quantizer.quantizePacked(
            rampWeights(96, 48, 40, rng), Matrix()));
        EXPECT_GT(over_plan.blockStats().scalarTiles, 0u);
        const Matrix over_acts = saturatedActs(96, 37, rng);
        expectGemmPathsAgree(over_plan, QuantizedActs(over_acts, 8, 32));
    }
}

TEST(KernelDispatch, AllPrunedTilesAcrossPaths)
{
    // A zeroed column stripe: its tiles classify Zero and are skipped
    // before dispatch, so every path must agree AND leave the stripe
    // exactly zero.
    MsqConfig cfg;
    cfg.macroBlock = 32;
    cfg.microBlock = 8;
    cfg.outlierMode = OutlierMode::None;
    cfg.hessianCompensation = false;
    Rng rng(97);
    Matrix w = fmWeights(96, 96, rng, 0.0);
    for (size_t r = 0; r < w.rows(); ++r)
        for (size_t c = 32; c < 64; ++c)
            w(r, c) = 0.0;
    MicroScopiQQuantizer quantizer(cfg);
    const PackedExecPlan plan(quantizer.quantizePacked(w, Matrix()));
    EXPECT_GT(plan.blockStats().zeroTiles, 0u);
    const QuantizedActs acts(randomActs(96, 37, rng), 8, 32);
    expectGemmPathsAgree(plan, acts);
    for (KernelPath path : usableKernelPaths()) {
        PathGuard guard(path);
        const Matrix out = plan.gemm(acts);
        for (size_t c = 32; c < 64; ++c)
            for (size_t t = 0; t < out.cols(); ++t)
                ASSERT_EQ(out(c, t), 0.0)
                    << "path " << kernelPathName(path);
    }
}

TEST(KernelDispatch, ActQuantizationAcrossPaths)
{
    // Channel-major activation quantization: codes AND scale exponents
    // must be byte-identical under every path. 53 channels with group
    // 32 leave a ragged last group; 70 tokens leave a ragged token
    // block (64 + 6) — both tails cross the vector widths.
    Rng rng(555);
    const Matrix x = randomActs(53, 70, rng);
    for (unsigned bits : {2u, 4u, 8u}) {
        MxIntActPanel oracle;
        {
            PathGuard guard(KernelPath::Scalar);
            quantizeActsChannelMajor(x, bits, 32, oracle);
        }
        for (KernelPath path : usableKernelPaths()) {
            PathGuard guard(path);
            MxIntActPanel got;
            quantizeActsChannelMajor(x, bits, 32, got);
            ASSERT_EQ(got.codes.size(), oracle.codes.size());
            ASSERT_EQ(got.scaleExp.size(), oracle.scaleExp.size());
            EXPECT_EQ(0, std::memcmp(got.codes.data(),
                                     oracle.codes.data(),
                                     oracle.codes.size()))
                << "codes diverge on " << kernelPathName(path);
            EXPECT_EQ(0, std::memcmp(got.scaleExp.data(),
                                     oracle.scaleExp.data(),
                                     oracle.scaleExp.size()))
                << "scales diverge on " << kernelPathName(path);
        }
    }
}

TEST(KernelDispatch, NegativeZeroAndTieRounding)
{
    // The vectorized quantizer's sign restore uses the sign BIT, so
    // -0.0, exact .5 ties, and saturating magnitudes are the adversarial
    // inputs; the scalar oracle must be reproduced on all of them.
    const size_t n = 16;
    Matrix x(1, n);
    const double vals[n] = {0.0,   -0.0,  0.5,    -0.5,  1.5,  -1.5,
                            2.5,   -2.5,  127.0,  -127.0, 300.0, -300.0,
                            1e-30, -1e-30, 65.25, -65.25};
    for (size_t t = 0; t < n; ++t)
        x(0, t) = vals[t];
    MxIntActPanel oracle;
    {
        PathGuard guard(KernelPath::Scalar);
        quantizeActsChannelMajor(x, 8, 0, oracle);
    }
    for (KernelPath path : usableKernelPaths()) {
        PathGuard guard(path);
        MxIntActPanel got;
        quantizeActsChannelMajor(x, 8, 0, got);
        ASSERT_EQ(got.codes, oracle.codes)
            << "path " << kernelPathName(path);
        ASSERT_EQ(got.scaleExp, oracle.scaleExp)
            << "path " << kernelPathName(path);
    }
}

} // namespace
} // namespace msq
