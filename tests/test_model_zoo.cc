/**
 * @file
 * Tests for the synthetic model substrate: zoo lookups, weight
 * generator statistics (outlier and adjacency rates land near the
 * profile, the Fig. 2a contrast between OPT and LLaMA-3/VLMs),
 * activation generator properties, proxy metric monotonicity, and the
 * end-to-end pipeline.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/outlier.h"
#include "model/calib_gen.h"
#include "model/model_zoo.h"
#include "model/pipeline.h"
#include "model/proxy_eval.h"
#include "model/weight_gen.h"
#include "quant/rtn.h"

namespace msq {
namespace {

TEST(ModelZoo, LookupAndRoster)
{
    const ModelProfile &m = modelByName("LLaMA3-8B");
    EXPECT_EQ(m.name, "LLaMA3-8B");
    EXPECT_EQ(m.kind, ModelKind::Llm);
    EXPECT_FALSE(m.layers.empty());
    EXPECT_EQ(table2Models().size(), 10u);
    EXPECT_GE(allModels().size(), 16u);
    for (const std::string &name : table2Models())
        EXPECT_NO_FATAL_FAILURE(modelByName(name));
}

TEST(WeightGen, OutlierRateMatchesProfile)
{
    const ModelProfile &m = modelByName("LLaMA3-8B");
    const Matrix w = generateLayerWeights(m, 0);
    const OutlierStats stats = analyzeOutliers(w, 128);
    // Planted rate 3%; detection re-estimates sigma per macro-block so
    // allow a generous band.
    EXPECT_GT(stats.outlierFraction(), 0.015);
    EXPECT_LT(stats.outlierFraction(), 0.06);
}

TEST(WeightGen, AdjacencyContrastOptVsLlama3)
{
    // The Fig. 2a contrast: OPT has orders of magnitude fewer adjacent
    // outliers than LLaMA-3 / VLMs.
    const Matrix w_opt =
        generateLayerWeights(modelByName("OPT-6.7B"), 0);
    const Matrix w_l3 =
        generateLayerWeights(modelByName("LLaMA3-8B"), 0);
    const double adj_opt = analyzeOutliers(w_opt, 128).adjacentFraction();
    const double adj_l3 = analyzeOutliers(w_l3, 128).adjacentFraction();
    EXPECT_LT(adj_opt, adj_l3 / 5.0);
    EXPECT_GT(adj_l3, 0.004);
}

TEST(WeightGen, Deterministic)
{
    const ModelProfile &m = modelByName("LLaMA2-7B");
    const Matrix a = generateLayerWeights(m, 1);
    const Matrix b = generateLayerWeights(m, 1);
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_DOUBLE_EQ(a.data()[i], b.data()[i]);
}

TEST(CalibGen, ShapesAndDisjointSeeds)
{
    const ModelProfile &m = modelByName("LLaMA2-7B");
    const Matrix calib = generateCalibration(m, 0, 32);
    const Matrix eval = generateEvalSet(m, 0, 32);
    EXPECT_EQ(calib.rows(), m.layers[0].k);
    EXPECT_EQ(calib.cols(), 32u);
    // Calibration and evaluation sets differ.
    double diff = 0.0;
    for (size_t i = 0; i < calib.size(); ++i)
        diff += std::fabs(calib.data()[i] - eval.data()[i]);
    EXPECT_GT(diff, 1.0);
}

TEST(CalibGen, OutlierChannelsExist)
{
    ActProfile p;
    p.outlierChannelRate = 0.05;
    p.outlierChannelScale = 30.0;
    Rng rng(3);
    const Matrix x = generateActivations(p, 512, 16, rng);
    // Max channel magnitude far exceeds the median channel magnitude.
    std::vector<double> maxes(512, 0.0);
    for (size_t r = 0; r < 512; ++r)
        for (size_t t = 0; t < 16; ++t)
            maxes[r] = std::max(maxes[r], std::fabs(x(r, t)));
    std::sort(maxes.begin(), maxes.end());
    EXPECT_GT(maxes.back() / maxes[256], 5.0);
}

TEST(ProxyEval, Monotone)
{
    EXPECT_DOUBLE_EQ(proxyPerplexity(6.13, 0.0), 6.13);
    EXPECT_GT(proxyPerplexity(6.13, 0.1), proxyPerplexity(6.13, 0.05));
    EXPECT_DOUBLE_EQ(proxyAccuracy(80.0, 0.0), 80.0);
    EXPECT_LT(proxyAccuracy(80.0, 0.2), 80.0);
    EXPECT_GT(proxyAccuracy(80.0, 0.2), 25.0);  // floors at chance
}

TEST(Pipeline, RunsAndOrdersPrecisions)
{
    const ModelProfile &m = modelByName("Phi3-3.8B");
    PipelineConfig cfg;
    cfg.calibTokens = 48;
    cfg.evalTokens = 48;

    QuantMethod w8{"RTN-W8", [] {
                       return std::make_unique<RtnQuantizer>(8, 128);
                   }};
    QuantMethod w3{"RTN-W3", [] {
                       return std::make_unique<RtnQuantizer>(3, 128);
                   }};
    const ModelEvalResult r8 = evaluateMethodOnModel(m, w8, cfg);
    const ModelEvalResult r3 = evaluateMethodOnModel(m, w3, cfg);
    EXPECT_LT(r8.meanNmse, r3.meanNmse);
    EXPECT_LT(r8.proxyPpl, r3.proxyPpl);
    EXPECT_GE(r8.proxyPpl, m.fpMetric);

    // Accuracy-metric models report proxy accuracy instead.
    const ModelProfile &cnn = modelByName("ResNet50");
    const ModelEvalResult c8 = evaluateMethodOnModel(cnn, w8, cfg);
    const ModelEvalResult c3 = evaluateMethodOnModel(cnn, w3, cfg);
    EXPECT_GT(c8.proxyAcc, c3.proxyAcc);
    EXPECT_LE(c8.proxyAcc, cnn.fpMetric);
}

TEST(Pipeline, ActivationQuantizationAddsError)
{
    const ModelProfile &m = modelByName("Phi3-3.8B");
    PipelineConfig cfg;
    cfg.calibTokens = 48;
    cfg.evalTokens = 48;
    auto factory = [] { return std::make_unique<RtnQuantizer>(8, 128); };
    QuantMethod w_only{"W8A16", factory};
    QuantMethod w_a4{"W8A4", factory, 4};
    const double nmse_w = evaluateMethodOnModel(m, w_only, cfg).meanNmse;
    const double nmse_wa = evaluateMethodOnModel(m, w_a4, cfg).meanNmse;
    EXPECT_GT(nmse_wa, nmse_w);
}

TEST(Pipeline, MigrationHelpsActivationQuantization)
{
    // With 4-bit activations and outlier channels, SmoothQuant-style
    // migration must reduce the end-to-end error.
    const ModelProfile &m = modelByName("LLaMA3-8B");
    PipelineConfig cfg;
    cfg.calibTokens = 48;
    cfg.evalTokens = 48;
    auto factory = [] { return std::make_unique<RtnQuantizer>(8, 128); };
    QuantMethod plain{"W8A4", factory, 4, 0.0};
    QuantMethod migrated{"W8A4+mig", factory, 4, 0.7};
    const double nmse_plain =
        evaluateMethodOnModel(m, plain, cfg).meanNmse;
    const double nmse_mig =
        evaluateMethodOnModel(m, migrated, cfg).meanNmse;
    EXPECT_LT(nmse_mig, nmse_plain);
}

} // namespace
} // namespace msq
