/**
 * @file
 * Direct coverage of the KV-cache quantizers (quant/kv_cache.h) and the
 * streaming per-sequence pool (quant/kv_pool.h): residual-window
 * boundaries, degenerate group sizes, constant spans, the full 1-8 bit
 * grid, ragged last groups, non-finite input hardening, and the
 * incremental-equals-batch property the decode engine's determinism
 * rests on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/simd_dispatch.h"
#include "quant/kv_cache.h"
#include "quant/kv_pool.h"

namespace msq {
namespace {

Matrix
randomCache(size_t channels, size_t tokens, uint64_t seed)
{
    Rng rng(seed);
    Matrix m(channels, tokens);
    for (size_t c = 0; c < channels; ++c)
        for (size_t t = 0; t < tokens; ++t)
            m(c, t) = rng.gaussian(0.0, 1.0 + 0.1 * static_cast<double>(c));
    return m;
}

TEST(AsymQuantSpan, ResidualAtLeastTokensLeavesCacheUntouched)
{
    const Matrix keys = randomCache(8, 16, 1);
    KvCacheConfig cfg;
    cfg.residual = 16;  // residual == tokens
    Matrix out = quantizeKeyCache(keys, cfg);
    for (size_t c = 0; c < keys.rows(); ++c)
        for (size_t t = 0; t < keys.cols(); ++t)
            EXPECT_EQ(out(c, t), keys(c, t));

    cfg.residual = 64;  // residual > tokens
    out = quantizeValueCache(keys, cfg);
    for (size_t c = 0; c < keys.rows(); ++c)
        for (size_t t = 0; t < keys.cols(); ++t)
            EXPECT_EQ(out(c, t), keys(c, t));
}

TEST(AsymQuantSpan, ResidualZeroQuantizesEveryToken)
{
    const Matrix keys = randomCache(4, 24, 2);
    KvCacheConfig cfg;
    cfg.bits = 2;
    cfg.groupSize = 8;
    cfg.residual = 0;
    const Matrix out = quantizeKeyCache(keys, cfg);
    // Every group must collapse to at most 2^bits distinct levels.
    for (size_t c = 0; c < keys.rows(); ++c) {
        for (size_t t0 = 0; t0 < keys.cols(); t0 += cfg.groupSize) {
            std::vector<double> levels;
            for (size_t j = 0; j < cfg.groupSize; ++j) {
                const double v = out(c, t0 + j);
                bool seen = false;
                for (double l : levels)
                    seen = seen || l == v;
                if (!seen)
                    levels.push_back(v);
            }
            EXPECT_LE(levels.size(), 4u);
        }
    }
}

TEST(AsymQuantSpan, GroupSizeZeroSpansWholeRange)
{
    const Matrix keys = randomCache(3, 20, 3);
    KvCacheConfig cfg;
    cfg.bits = 3;
    cfg.groupSize = 0;  // one group over all quantized tokens
    cfg.residual = 4;
    const Matrix out = quantizeKeyCache(keys, cfg);
    for (size_t c = 0; c < keys.rows(); ++c) {
        // One asymmetric grid per channel: min and max are preserved
        // exactly (they are grid endpoints).
        double lo = keys(c, 0), hi = keys(c, 0);
        for (size_t t = 0; t < 16; ++t) {
            lo = std::min(lo, keys(c, t));
            hi = std::max(hi, keys(c, t));
        }
        double qlo = out(c, 0), qhi = out(c, 0);
        for (size_t t = 0; t < 16; ++t) {
            qlo = std::min(qlo, out(c, t));
            qhi = std::max(qhi, out(c, t));
        }
        EXPECT_DOUBLE_EQ(qlo, lo);
        EXPECT_DOUBLE_EQ(qhi, hi);
        // Residual tail untouched.
        for (size_t t = 16; t < 20; ++t)
            EXPECT_EQ(out(c, t), keys(c, t));
    }
}

TEST(AsymQuantSpan, ConstantSpanIsExact)
{
    std::vector<double> span(12, 3.25);
    asymQuantSpan(span.data(), span.size(), 2);
    for (double v : span)
        EXPECT_EQ(v, 3.25);

    const AsymSpanGrid grid = asymSpanParams(span.data(), span.size(), 2);
    EXPECT_EQ(grid.step, 0.0);
    EXPECT_EQ(asymDecode(asymEncode(3.25, grid, 2), grid), 3.25);
}

TEST(AsymQuantSpan, BitGridOneThroughEight)
{
    Rng rng(7);
    std::vector<double> base(64);
    for (double &v : base)
        v = rng.uniform(-2.0, 2.0);

    double prev_err = std::numeric_limits<double>::infinity();
    for (unsigned bits = 1; bits <= 8; ++bits) {
        std::vector<double> span = base;
        asymQuantSpan(span.data(), span.size(), bits);
        double err = 0.0, lo = base[0], hi = base[0];
        for (size_t i = 0; i < base.size(); ++i) {
            err += (span[i] - base[i]) * (span[i] - base[i]);
            lo = std::min(lo, base[i]);
            hi = std::max(hi, base[i]);
        }
        // Quantized values stay inside the span's range and the error
        // shrinks monotonically with the bit width.
        for (double v : span) {
            EXPECT_GE(v, lo - 1e-12);
            EXPECT_LE(v, hi + 1e-12);
        }
        EXPECT_LT(err, prev_err);
        prev_err = err;
        // Max reconstruction error is bounded by half a step.
        const double step = (hi - lo) / ((1u << bits) - 1);
        for (size_t i = 0; i < base.size(); ++i)
            EXPECT_LE(std::fabs(span[i] - base[i]), step / 2 + 1e-12);
    }
}

TEST(AsymQuantSpan, RaggedLastGroups)
{
    // 21 quantized tokens in groups of 8: 8 + 8 + 5 (ragged).
    const Matrix keys = randomCache(2, 25, 11);
    KvCacheConfig cfg;
    cfg.bits = 2;
    cfg.groupSize = 8;
    cfg.residual = 4;
    const Matrix out = quantizeKeyCache(keys, cfg);
    // The ragged group [16, 21) must quantize against its own span:
    // its min/max are preserved exactly.
    for (size_t c = 0; c < 2; ++c) {
        double lo = keys(c, 16), hi = keys(c, 16);
        for (size_t t = 16; t < 21; ++t) {
            lo = std::min(lo, keys(c, t));
            hi = std::max(hi, keys(c, t));
        }
        double qlo = out(c, 16), qhi = out(c, 16);
        for (size_t t = 16; t < 21; ++t) {
            qlo = std::min(qlo, out(c, t));
            qhi = std::max(qhi, out(c, t));
        }
        EXPECT_DOUBLE_EQ(qlo, lo);
        EXPECT_DOUBLE_EQ(qhi, hi);
    }

    // Value caches group along channels: 5 channels in groups of 4 is
    // one full + one ragged single-channel group, which must be exact.
    const Matrix vals = randomCache(5, 10, 12);
    KvCacheConfig vcfg;
    vcfg.bits = 2;
    vcfg.groupSize = 4;
    vcfg.residual = 0;
    const Matrix vout = quantizeValueCache(vals, vcfg);
    for (size_t t = 0; t < 10; ++t)
        EXPECT_EQ(vout(4, t), vals(4, t));  // single-element span
}

TEST(AsymQuantSpanDeathTest, NonFiniteInputIsFatal)
{
    std::vector<double> span = {1.0, 2.0,
                                std::numeric_limits<double>::quiet_NaN(),
                                4.0};
    EXPECT_DEATH(asymQuantSpan(span.data(), span.size(), 2),
                 "non-finite input at index 2");
    span[2] = std::numeric_limits<double>::infinity();
    EXPECT_DEATH(asymQuantSpan(span.data(), span.size(), 2),
                 "non-finite input at index 2");
    span[2] = -std::numeric_limits<double>::infinity();
    EXPECT_DEATH(asymSpanParams(span.data(), span.size(), 2),
                 "non-finite input at index 2");
}

// ---------------------------------------------------------------------------
// Streaming pool (quant/kv_pool.h)

TEST(KvPool, IncrementalAppendMatchesBatchQuantization)
{
    // The closed prefix of the pool must reproduce quantizeKeyCache /
    // quantizeValueCache bit for bit on every closed group, for every
    // append count.
    const size_t channels = 6;
    KvCacheConfig cfg;
    cfg.bits = 2;
    cfg.groupSize = 4;
    cfg.residual = 5;
    const Matrix keys = randomCache(channels, 40, 21);
    const Matrix vals = randomCache(channels, 40, 22);

    KvPool pool(channels, cfg);
    std::vector<double> kcol(channels), vcol(channels);
    for (size_t t = 0; t < 40; ++t) {
        for (size_t c = 0; c < channels; ++c) {
            kcol[c] = keys(c, t);
            vcol[c] = vals(c, t);
        }
        pool.append(kcol.data(), vcol.data());
        const size_t n = t + 1;
        ASSERT_EQ(pool.tokens(), n);

        // Closed prefix: largest multiple of groupSize fitting before
        // the residual window.
        const size_t quant =
            n > cfg.residual
                ? ((n - cfg.residual) / cfg.groupSize) * cfg.groupSize
                : 0;
        ASSERT_EQ(pool.quantizedTokens(), quant);

        // Batch-quantize the first n tokens; closed groups agree
        // exactly, the residual tail is the raw appended data.
        Matrix kn(channels, n), vn(channels, n);
        for (size_t c = 0; c < channels; ++c)
            for (size_t tt = 0; tt < n; ++tt) {
                kn(c, tt) = keys(c, tt);
                vn(c, tt) = vals(c, tt);
            }
        const Matrix kq = quantizeKeyCache(kn, cfg);
        const Matrix vq = quantizeValueCache(vn, cfg);
        for (size_t c = 0; c < channels; ++c) {
            for (size_t tt = 0; tt < n; ++tt) {
                if (tt < quant) {
                    ASSERT_EQ(pool.key(c, tt), kq(c, tt))
                        << "key (" << c << "," << tt << ") at n=" << n;
                    ASSERT_EQ(pool.value(c, tt), vq(c, tt))
                        << "value (" << c << "," << tt << ") at n=" << n;
                } else {
                    ASSERT_EQ(pool.key(c, tt), keys(c, tt));
                    ASSERT_EQ(pool.value(c, tt), vals(c, tt));
                }
            }
        }
    }
}

TEST(KvPool, ResidualZeroClosesEveryFullGroup)
{
    KvCacheConfig cfg;
    cfg.bits = 4;
    cfg.groupSize = 8;
    cfg.residual = 0;
    KvPool pool(3, cfg);
    std::vector<double> col(3);
    Rng rng(31);
    for (size_t t = 0; t < 17; ++t) {
        for (double &v : col)
            v = rng.gaussian();
        pool.append(col.data(), col.data());
    }
    // 17 tokens, groups of 8: tokens [0, 16) closed, token 16 in the
    // tail awaiting a full group.
    EXPECT_EQ(pool.quantizedTokens(), 16u);
    EXPECT_GT(pool.packedBytes(), 0u);
    EXPECT_EQ(pool.fpBytes(), 2 * 3 * sizeof(double));
}

TEST(KvPool, RaggedValueChannelGroups)
{
    // channels = 5, groupSize = 4: per-token value grids split 4 + 1;
    // the single-channel ragged grid reconstructs exactly.
    KvCacheConfig cfg;
    cfg.bits = 2;
    cfg.groupSize = 4;
    cfg.residual = 0;
    KvPool pool(5, cfg);
    Rng rng(33);
    std::vector<double> kcol(5), vcol(5);
    Matrix vals(5, 4);
    for (size_t t = 0; t < 4; ++t) {
        for (size_t c = 0; c < 5; ++c) {
            kcol[c] = rng.gaussian();
            vcol[c] = rng.gaussian();
            vals(c, t) = vcol[c];
        }
        pool.append(kcol.data(), vcol.data());
    }
    ASSERT_EQ(pool.quantizedTokens(), 4u);
    for (size_t t = 0; t < 4; ++t)
        EXPECT_EQ(pool.value(4, t), vals(4, t));
}

TEST(KvPool, BitWidthGrid)
{
    for (unsigned bits = 1; bits <= 8; ++bits) {
        KvCacheConfig cfg;
        cfg.bits = bits;
        cfg.groupSize = 4;
        cfg.residual = 0;
        KvPool pool(2, cfg);
        Rng rng(40 + bits);
        Matrix keys(2, 8);
        std::vector<double> kcol(2), vcol(2);
        for (size_t t = 0; t < 8; ++t) {
            for (size_t c = 0; c < 2; ++c) {
                kcol[c] = rng.uniform(-1.0, 1.0);
                keys(c, t) = kcol[c];
                vcol[c] = kcol[c];
            }
            pool.append(kcol.data(), vcol.data());
        }
        ASSERT_EQ(pool.quantizedTokens(), 8u);
        // Reconstruction error bounded by half a step of each group's
        // span (conservatively: the full span / levels).
        for (size_t c = 0; c < 2; ++c) {
            for (size_t t0 = 0; t0 < 8; t0 += 4) {
                double lo = keys(c, t0), hi = keys(c, t0);
                for (size_t j = 0; j < 4; ++j) {
                    lo = std::min(lo, keys(c, t0 + j));
                    hi = std::max(hi, keys(c, t0 + j));
                }
                const double step = (hi - lo) / ((1u << bits) - 1);
                for (size_t j = 0; j < 4; ++j)
                    EXPECT_LE(std::fabs(pool.key(c, t0 + j) -
                                        keys(c, t0 + j)),
                              step / 2 + 1e-12);
            }
        }
    }
}

TEST(KvPool, GatherMatchesAccessors)
{
    KvCacheConfig cfg;
    cfg.bits = 2;
    cfg.groupSize = 4;
    cfg.residual = 3;
    const size_t channels = 5;
    KvPool pool(channels, cfg);
    Rng rng(55);
    std::vector<double> kcol(channels), vcol(channels);
    for (size_t t = 0; t < 19; ++t) {
        for (size_t c = 0; c < channels; ++c) {
            kcol[c] = rng.gaussian();
            vcol[c] = rng.gaussian();
        }
        pool.append(kcol.data(), vcol.data());

        // Dense gather equals the element accessors bit for bit, both
        // at the natural stride and at a wider one (the in-place
        // append layout the decode engine uses).
        const size_t n = pool.tokens();
        for (size_t stride : {n, n + 7}) {
            std::vector<double> kb(channels * stride, -99.0);
            std::vector<double> vb(channels * stride, -99.0);
            pool.gather(kb.data(), vb.data(),
                        stride == n ? 0 : stride);
            for (size_t c = 0; c < channels; ++c)
                for (size_t tt = 0; tt < n; ++tt) {
                    ASSERT_EQ(kb[c * stride + tt], pool.key(c, tt));
                    ASSERT_EQ(vb[c * stride + tt], pool.value(c, tt));
                }
        }
    }
}

TEST(KvPool, GatherBitIdenticalAcrossKernelPaths)
{
    // The vectorized span decode must reproduce the scalar gather byte
    // for byte on every usable path, across code widths (byte-aligned
    // and not), ragged value channel-groups, and a residual tail.
    for (unsigned bits : {1u, 3u, 5u, 8u}) {
        KvCacheConfig cfg;
        cfg.bits = bits;
        cfg.groupSize = 6;
        cfg.residual = 2;
        const size_t channels = 10;  // ragged last value group (6 + 4)
        KvPool pool(channels, cfg);
        Rng rng(400 + bits);
        std::vector<double> kcol(channels), vcol(channels);
        for (size_t t = 0; t < 29; ++t) {
            for (size_t c = 0; c < channels; ++c) {
                kcol[c] = rng.gaussian();
                vcol[c] = rng.gaussian();
            }
            pool.append(kcol.data(), vcol.data());
        }
        const size_t n = pool.tokens();
        ASSERT_GT(pool.quantizedTokens(), 0u);
        setKernelPath(KernelPath::Scalar);
        std::vector<double> kref(channels * n), vref(channels * n);
        pool.gather(kref.data(), vref.data(), 0);
        for (KernelPath path : usableKernelPaths()) {
            setKernelPath(path);
            for (size_t stride : {n, n + 5}) {
                std::vector<double> kb(channels * stride, -99.0);
                std::vector<double> vb(channels * stride, -99.0);
                pool.gather(kb.data(), vb.data(),
                            stride == n ? 0 : stride);
                for (size_t c = 0; c < channels; ++c)
                    for (size_t tt = 0; tt < n; ++tt) {
                        ASSERT_EQ(kb[c * stride + tt], kref[c * n + tt])
                            << "bits " << bits << " path "
                            << kernelPathName(path);
                        ASSERT_EQ(vb[c * stride + tt], vref[c * n + tt])
                            << "bits " << bits << " path "
                            << kernelPathName(path);
                    }
            }
        }
        resetKernelPath();
    }
}

TEST(KvPool, ConstantSpansAreExact)
{
    KvCacheConfig cfg;
    cfg.bits = 2;
    cfg.groupSize = 4;
    cfg.residual = 0;
    KvPool pool(2, cfg);
    std::vector<double> col = {1.5, -2.75};
    for (size_t t = 0; t < 4; ++t)
        pool.append(col.data(), col.data());
    ASSERT_EQ(pool.quantizedTokens(), 4u);
    for (size_t t = 0; t < 4; ++t) {
        EXPECT_EQ(pool.key(0, t), 1.5);
        EXPECT_EQ(pool.key(1, t), -2.75);
        EXPECT_EQ(pool.value(0, t), 1.5);
        EXPECT_EQ(pool.value(1, t), -2.75);
    }
}

TEST(KvPoolDeathTest, InvalidConfigAndAccess)
{
    KvCacheConfig cfg;
    cfg.groupSize = 0;
    EXPECT_DEATH(KvPool(4, cfg), "finite groupSize");

    KvCacheConfig ok;
    ok.groupSize = 4;
    KvPool pool(2, ok);
    std::vector<double> col = {0.0, 1.0};
    pool.append(col.data(), col.data());
    EXPECT_DEATH(pool.key(2, 0), "out of range");
    EXPECT_DEATH(pool.key(0, 1), "out of range");
    EXPECT_DEATH(pool.value(0, 5), "out of range");
}

} // namespace
} // namespace msq
