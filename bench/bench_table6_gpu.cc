/**
 * @file
 * Table 6 reproduction: normalized token-generation throughput on an
 * A100-class GPU for LLaMA2-13B and LLaMA3-8B across kernel variants,
 * plus the modified-tensor-core simulation. Values are normalized to
 * the TRT-LLM FP16 baseline as in the paper.
 */

#include <vector>

#include "common/table.h"
#include "gpu/gpu_model.h"
#include "model/model_zoo.h"

using namespace msq;

int
main()
{
    struct Entry
    {
        GpuKernel kernel;
        double paper_13b;
        double paper_8b;
    };
    const std::vector<Entry> entries = {
        {GpuKernel::TrtLlmFp16, 1.00, 1.00},
        {GpuKernel::AtomW4A4, 2.25, 1.05},
        {GpuKernel::MsNoOptim, 0.98, 0.92},
        {GpuKernel::MsOptim, 2.06, 1.01},
        {GpuKernel::MsModifiedTensorCore, 4.31, 1.78},
    };

    GpuConfig cfg;
    const double p13 = modelByName("LLaMA2-13B").paramsB;
    const double p8 = modelByName("LLaMA3-8B").paramsB;
    const double fp13 =
        runDecode(cfg, GpuKernel::TrtLlmFp16, p13, 16.0).tokensPerSec;
    const double fp8 =
        runDecode(cfg, GpuKernel::TrtLlmFp16, p8, 16.0).tokensPerSec;

    Table t("Table 6: normalized token throughput, A100-class "
            "(paper -> measured model)");
    t.setHeader({"method", "LLaMA2-13B", "LLaMA3-8B"});
    for (const Entry &e : entries) {
        const double ebw = e.kernel == GpuKernel::AtomW4A4 ? 4.25 : 4.15;
        const double m13 =
            runDecode(cfg, e.kernel, p13, ebw).tokensPerSec / fp13;
        const double m8 =
            runDecode(cfg, e.kernel, p8, ebw).tokensPerSec / fp8;
        t.addRow({gpuKernelName(e.kernel),
                  Table::fmt(e.paper_13b, 2) + " -> " + Table::fmt(m13, 2),
                  Table::fmt(e.paper_8b, 2) + " -> " + Table::fmt(m8, 2)});
    }
    t.print();
    std::puts("Model constants are calibrated against the 13B column; "
              "the 8B column is a\nprediction (the paper's 8B anomalies "
              "— Atom at 1.05x — reflect setup details\nthe table does "
              "not specify; see EXPERIMENTS.md).");
    return 0;
}
