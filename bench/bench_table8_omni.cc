/**
 * @file
 * Table 8 reproduction: Omni-MicroScopiQ — MicroScopiQ combined with
 * OmniQuant's learnable ingredients (LWC via per-group clip search on
 * the inlier scale, LET via migration) against OmniQuant-lite alone,
 * on three model profiles at W4A16, W2A16 and W2A8.
 */

#include <vector>

#include "bench_util.h"
#include "common/table.h"

using namespace msq;
using namespace msq::bench;

namespace {

/** Omni-MicroScopiQ: MicroScopiQ plus LET-style migration (the LWC
 *  analogue is the clip search already embedded in the scale
 *  selection; migration carries the learnable-transform benefit). */
QuantMethod
omniMicroScopiQ(unsigned bits, unsigned act_bits)
{
    QuantMethod m = microScopiQMethod(bits, act_bits, 0.5);
    m.name = "Omni-MicroScopiQ";
    return m;
}

} // namespace

int
main()
{
    const std::vector<std::string> models = {"LLaMA2-13B", "LLaMA3-70B",
                                             "Phi3-3.8B"};
    struct Setting
    {
        const char *name;
        unsigned bits;
        unsigned actBits;
        std::vector<double> paper_omni;
        std::vector<double> paper_oms;
    };
    const std::vector<Setting> settings = {
        {"W4A16", 4, 0, {5.02, 3.46, 6.67}, {4.87, 2.97, 6.52}},
        {"W2A16", 2, 0, {7.56, 6.17, 7.09}, {6.58, 5.09, 6.89}},
        {"W2A8", 2, 8, {8.92, 6.83, 7.95}, {7.12, 5.74, 7.21}},
    };

    PipelineConfig cfg;
    cfg.calibTokens = 96;
    cfg.evalTokens = 96;

    std::puts("Table 8: OmniQuant vs Omni-MicroScopiQ "
              "(proxy PPL, paper -> measured).\n");
    for (const Setting &s : settings) {
        Table t(std::string("Setting ") + s.name);
        std::vector<std::string> header = {"method"};
        for (const std::string &m : models)
            header.push_back(m);
        t.setHeader(header);

        // Both methods on every model: one parallel sweep per setting,
        // OmniQuant cells first, then Omni-MicroScopiQ.
        std::vector<SweepCell> cells;
        for (const std::string &m : models)
            cells.push_back(
                {&modelByName(m), omniQuantMethod(s.bits, s.actBits, true)});
        for (const std::string &m : models)
            cells.push_back(
                {&modelByName(m), omniMicroScopiQ(s.bits, s.actBits)});
        const std::vector<ModelEvalResult> results = runSweep(cells, cfg);

        std::vector<std::string> omni_row = {"OmniQuant"};
        std::vector<std::string> oms_row = {"Omni-MicroScopiQ"};
        for (size_t mi = 0; mi < models.size(); ++mi) {
            const double omni = results[mi].proxyPpl;
            const double oms = results[models.size() + mi].proxyPpl;
            omni_row.push_back(Table::fmt(s.paper_omni[mi], 2) + " -> " +
                               Table::fmt(omni, 2));
            oms_row.push_back(Table::fmt(s.paper_oms[mi], 2) + " -> " +
                              Table::fmt(oms, 2));
        }
        t.addRow(omni_row);
        t.addRow(oms_row);
        t.print();
    }
    std::puts("Claim under test: the combination beats OmniQuant alone "
              "in every cell\n(paper: up to 22% improvement).");
    return 0;
}
