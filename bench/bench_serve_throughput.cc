/**
 * @file
 * Serving-throughput benchmark: streams synthetic requests through a
 * model zoo profile on the packed-execution engine, once with the
 * scheduler forced to one request per batch (the naive deployment) and
 * once with batching enabled, and reports latency percentiles and
 * throughput for both. Batching must win on two axes: the decoded
 * weight stream is reused across every token of a batch
 * (weight-stationary amortization), and wide batches give parallelFor
 * enough tiles to fill the pool.
 *
 * Two further sections track the PR's kernel trajectory directly:
 *
 *  - a kernel-level single-thread comparison of the blocked integer
 *    GEMM against the retained scalar oracle (`referenceGemm`, the
 *    PR-2 serving kernel) on the profile's largest layer — the
 *    speedup scripts/check_bench_json.py enforces a floor on — plus
 *    the blocked kernel under every usable SIMD dispatch path
 *    (common/simd_dispatch.h), recording per-path timings and the
 *    hand-vectorized-over-scalar speedup the schema also floors;
 *  - a single-low-latency-request case: one narrow request served
 *    with the token-only partition (tileCols pinned past the layer
 *    width) versus the 2D (column-block x token-tile) partition, the
 *    case `ServeConfig::tileCols` exists for. The win requires
 *    multiple threads; on a single-core runner the two are on par.
 *
 * Alongside the human-readable table the bench emits a machine-readable
 * BENCH_serve.json (path overridable as argv[1]; model overridable as
 * argv[2] — CI runs a TinyLM smoke pass; schema checked by
 * scripts/check_bench_json.py) — the tracked benchmark trajectory for
 * the serving path.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/simd_dispatch.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/msq_config.h"
#include "model/calib_gen.h"
#include "model/model_zoo.h"
#include "serve/engine.h"

using namespace msq;

namespace {

constexpr size_t kRequests = 96;
constexpr size_t kTokensPerRequest = 4;

/** Submit the identical request stream to an engine. */
void
submitStream(ServeEngine &engine)
{
    for (uint64_t r = 0; r < kRequests; ++r)
        engine.submit(kTokensPerRequest, 1000 + r);
}

/** Kernel-level single-thread trajectory: blocked vs scalar oracle,
 *  plus the blocked kernel itself under every usable SIMD path. */
struct KernelRecord
{
    size_t layer = 0;       ///< profile layer index measured
    size_t terms = 0;       ///< integer MACs per token
    size_t tokens = 0;
    double referenceMs = 0.0;
    double blockedMs = 0.0; ///< active (auto-selected) path
    double speedup = 0.0;
    double gmacsPerSec = 0.0; ///< blocked kernel, 1e9 MACs/s
    std::string kernelPath;   ///< name of the active path
    /** Blocked-kernel ms per usable path, dispatch order (scalar first). */
    std::vector<std::pair<std::string, double>> pathMs;
    double simdSpeedup = 1.0; ///< forced-scalar ms / active-path ms
};

template <typename F>
double
timeMs(F &&fn, int reps)
{
    fn(); // warm
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i)
        fn();
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
               .count() /
           reps;
}

KernelRecord
measureKernel(const ModelProfile &model, const PackedModel &packed)
{
    KernelRecord rec;
    for (size_t li = 0; li < packed.plans.size(); ++li)
        if (packed.plans[li]->termCount() >
            packed.plans[rec.layer]->termCount())
            rec.layer = li;
    const PackedExecPlan &plan = *packed.plans[rec.layer];
    rec.terms = plan.termCount();
    rec.tokens = 64;

    const Matrix x =
        generateRequestActs(model, rec.layer, rec.tokens, 4242);
    const QuantizedActs acts(x, 8, 128);
    // Min-of-3 trials: the minimum is the noise-robust estimator for
    // short repeatable kernels, and the path-ratio floor checked by
    // scripts/check_bench_json.py needs stable per-path numbers.
    const int reps = rec.terms * rec.tokens > (1u << 20) ? 10 : 100;
    const auto minTimeMs = [](auto &&fn, int r) {
        double best = timeMs(fn, r);
        for (int trial = 1; trial < 3; ++trial)
            best = std::min(best, timeMs(fn, r));
        return best;
    };
    rec.referenceMs =
        minTimeMs([&] { Matrix out = plan.referenceGemm(acts); }, reps);
    rec.blockedMs =
        minTimeMs([&] { Matrix out = plan.gemm(acts); }, reps * 3);
    rec.speedup = rec.referenceMs / rec.blockedMs;
    rec.gmacsPerSec = static_cast<double>(rec.terms) *
                      static_cast<double>(rec.tokens) /
                      (rec.blockedMs * 1e6);

    // The same blocked GEMM under every usable SIMD path (identical
    // bytes, different instruction streams): the per-path trajectory
    // and the hand-vectorized-over-scalar floor live on these numbers.
    rec.kernelPath = kernelPathName(activeKernelPath());
    double scalar_ms = 0.0, active_ms = rec.blockedMs;
    for (KernelPath path : usableKernelPaths()) {
        setKernelPath(path);
        const double ms =
            minTimeMs([&] { Matrix out = plan.gemm(acts); }, reps * 3);
        rec.pathMs.emplace_back(kernelPathName(path), ms);
        if (path == KernelPath::Scalar)
            scalar_ms = ms;
        if (kernelPathName(path) == rec.kernelPath)
            active_ms = ms;
    }
    resetKernelPath();
    rec.simdSpeedup = active_ms > 0.0 ? scalar_ms / active_ms : 0.0;
    return rec;
}

/** Single-request latency: token-only vs 2D partition, p50 of reps. */
struct LatencyRecord
{
    double tokenOnlyMs = 0.0;
    double tiled2dMs = 0.0;
    double speedup = 0.0;
};

double
singleRequestP50(const ModelProfile &model, const MsqConfig &cfg,
                 size_t tile_cols)
{
    ServeConfig scfg;
    scfg.maxBatchRequests = 1;
    scfg.tileCols = tile_cols;
    ServeEngine engine(model, cfg, scfg);
    std::vector<double> lat;
    for (int i = 0; i < 24; ++i) {
        engine.submit(kTokensPerRequest, 9000 + i);
        const ServeReport rep = engine.drain();
        lat.push_back(rep.requests.front().latencyMs);
    }
    return percentile(lat, 50.0);
}

LatencyRecord
measureSingleRequest(const ModelProfile &model, const MsqConfig &cfg)
{
    LatencyRecord rec;
    // Pinning the column tile past any layer width disables the column
    // split, leaving the token-only partition of the PR-2 engine.
    // Two passes per mode, keeping the quieter one: the ratio below is
    // floor-checked and a single noisy pass on a loaded box can push an
    // honest ~1.0x below it.
    rec.tokenOnlyMs = std::min(singleRequestP50(model, cfg, 1u << 20),
                               singleRequestP50(model, cfg, 1u << 20));
    rec.tiled2dMs = std::min(singleRequestP50(model, cfg, 0),
                             singleRequestP50(model, cfg, 0));
    rec.speedup = rec.tokenOnlyMs / rec.tiled2dMs;
    return rec;
}

void
addPhaseRows(Table &t, const char *phase, const ServeReport &rep)
{
    t.addRow({phase, "requests", Table::fmtInt(static_cast<long long>(
                                     rep.requests.size()))});
    t.addRow({"", "batches",
              Table::fmtInt(static_cast<long long>(rep.batches))});
    t.addRow({"", "p50 / p95 / p99 latency (ms)",
              Table::fmt(rep.p50Ms, 2) + " / " + Table::fmt(rep.p95Ms, 2) +
                  " / " + Table::fmt(rep.p99Ms, 2)});
    t.addRow({"", "throughput (tokens/s)", Table::fmt(rep.tokensPerSec, 1)});
    t.addRow({"", "integer MACs/s",
              Table::fmt(rep.macsPerSec / 1e6, 1) + " M"});
}

void
writePhaseJson(std::FILE *f, const char *name, const ServeReport &rep)
{
    std::fprintf(f,
                 "  \"%s\": {\n"
                 "    \"requests\": %zu,\n"
                 "    \"batches\": %zu,\n"
                 "    \"tokens\": %zu,\n"
                 "    \"wall_ms\": %.3f,\n"
                 "    \"latency_ms\": {\"p50\": %.4f, \"p95\": %.4f, "
                 "\"p99\": %.4f, \"mean\": %.4f, \"max\": %.4f},\n"
                 "    \"requests_per_s\": %.2f,\n"
                 "    \"tokens_per_s\": %.2f,\n"
                 "    \"macs_per_s\": %.1f\n"
                 "  }",
                 name, rep.requests.size(), rep.batches, rep.tokens,
                 rep.wallMs, rep.p50Ms, rep.p95Ms, rep.p99Ms, rep.meanMs,
                 rep.maxMs, rep.requestsPerSec, rep.tokensPerSec,
                 rep.macsPerSec);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path =
        argc > 1 ? argv[1] : "BENCH_serve.json";
    const std::string model_name = argc > 2 ? argv[2] : "LLaMA2-7B";
    const ModelProfile &model = modelByName(model_name);
    MsqConfig qcfg;  // paper headline: W2, e1m2 outliers

    // The paper's serving regime is decode-heavy: many small requests.
    // Single-request config = scheduler disabled.
    ServeConfig single;
    single.maxBatchRequests = 1;
    single.tileTokens = 32;
    ServeConfig batched;
    batched.maxBatchRequests = 32;
    batched.maxBatchTokens = 256;
    batched.tileTokens = 32;

    // Warm the packed-weight cache outside every timed region (both
    // engines share the deployment).
    ServeEngine engine_single(model, qcfg, single);
    ServeEngine engine_batched(model, qcfg, batched);
    const PackedModel &packed = engine_single.packedModel();

    const KernelRecord kernel = measureKernel(model, packed);
    const LatencyRecord lat = measureSingleRequest(model, qcfg);

    submitStream(engine_single);
    const ServeReport rep_s = engine_single.drain();
    submitStream(engine_batched);
    const ServeReport rep_b = engine_batched.drain();

    const double speedup =
        rep_s.tokensPerSec > 0.0 ? rep_b.tokensPerSec / rep_s.tokensPerSec
                                 : 0.0;

    Table t("Serving throughput, " + model.name + ", " +
            qcfg.name() + " packed execution (" +
            std::to_string(threadCount()) + " threads)");
    t.setHeader({"phase", "quantity", "value"});
    t.addRow({"deploy", "quantize/load (ms)", Table::fmt(packed.buildMs, 1)});
    t.addRow({"", "plan decode (ms)", Table::fmt(packed.planMs, 1)});
    t.addRow({"", "EBW (Eq. 4)", Table::fmt(packed.meanEbw, 3) + " bits"});
    t.addRow({"", "MACs/token",
              Table::fmt(static_cast<double>(packed.termsPerToken) / 1e3,
                         1) +
                  " k"});
    t.addSeparator();
    t.addRow({"kernel", "layer / tokens",
              model.layers[kernel.layer].name + " / " +
                  Table::fmtInt(static_cast<long long>(kernel.tokens))});
    t.addRow({"", "reference (ms)", Table::fmt(kernel.referenceMs, 3)});
    t.addRow({"", "blocked (ms)", Table::fmt(kernel.blockedMs, 3)});
    t.addRow({"", "blocked / reference",
              Table::fmt(kernel.speedup, 2) + "x"});
    t.addRow({"", "blocked GMAC/s", Table::fmt(kernel.gmacsPerSec, 2)});
    t.addRow({"", "active path", kernel.kernelPath});
    for (const auto &[name, ms] : kernel.pathMs)
        t.addRow({"", "blocked " + name + " (ms)", Table::fmt(ms, 3)});
    t.addRow({"", "simd / scalar",
              Table::fmt(kernel.simdSpeedup, 2) + "x"});
    t.addSeparator();
    t.addRow({"1-request", "token-only p50 (ms)",
              Table::fmt(lat.tokenOnlyMs, 2)});
    t.addRow({"", "2D-partition p50 (ms)", Table::fmt(lat.tiled2dMs, 2)});
    t.addRow({"", "2D / token-only", Table::fmt(lat.speedup, 2) + "x"});
    t.addSeparator();
    addPhaseRows(t, "single", rep_s);
    t.addSeparator();
    addPhaseRows(t, "batched", rep_b);
    t.addSeparator();
    t.addRow({"", "batched / single throughput",
              Table::fmt(speedup, 2) + "x"});
    t.print();

    std::FILE *f = std::fopen(json_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"serve_throughput\",\n"
                 "  \"model\": \"%s\",\n"
                 "  \"method\": \"%s\",\n"
                 "  \"threads\": %u,\n"
                 "  \"tokens_per_request\": %zu,\n"
                 "  \"build_ms\": %.1f,\n"
                 "  \"plan_ms\": %.1f,\n"
                 "  \"ebw_bits\": %.4f,\n"
                 "  \"macs_per_token\": %zu,\n",
                 model.name.c_str(), qcfg.name().c_str(), threadCount(),
                 kTokensPerRequest, packed.buildMs, packed.planMs,
                 packed.meanEbw, packed.termsPerToken);
    std::fprintf(f,
                 "  \"kernel\": {\n"
                 "    \"layer\": \"%s\",\n"
                 "    \"terms\": %zu,\n"
                 "    \"tokens\": %zu,\n"
                 "    \"reference_ms\": %.4f,\n"
                 "    \"blocked_ms\": %.4f,\n"
                 "    \"speedup\": %.4f,\n"
                 "    \"gmacs_per_s\": %.4f,\n"
                 "    \"kernel_path\": \"%s\",\n"
                 "    \"paths\": {",
                 model.layers[kernel.layer].name.c_str(), kernel.terms,
                 kernel.tokens, kernel.referenceMs, kernel.blockedMs,
                 kernel.speedup, kernel.gmacsPerSec,
                 kernel.kernelPath.c_str());
    for (size_t i = 0; i < kernel.pathMs.size(); ++i)
        std::fprintf(f, "%s\"%s\": %.6f", i ? ", " : "",
                     kernel.pathMs[i].first.c_str(),
                     kernel.pathMs[i].second);
    std::fprintf(f,
                 "},\n"
                 "    \"simd_speedup\": %.4f\n"
                 "  },\n",
                 kernel.simdSpeedup);
    std::fprintf(f,
                 "  \"single_request\": {\n"
                 "    \"token_only_p50_ms\": %.4f,\n"
                 "    \"tiled_2d_p50_ms\": %.4f,\n"
                 "    \"speedup\": %.4f\n"
                 "  },\n",
                 lat.tokenOnlyMs, lat.tiled2dMs, lat.speedup);
    writePhaseJson(f, "single", rep_s);
    std::fprintf(f, ",\n");
    writePhaseJson(f, "batched", rep_b);
    std::fprintf(f, ",\n  \"speedup\": %.4f\n}\n", speedup);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
    return 0;
}
