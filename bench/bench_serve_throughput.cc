/**
 * @file
 * Serving-throughput benchmark: streams synthetic requests through a
 * model zoo profile on the packed-execution engine, once with the
 * scheduler forced to one request per batch (the naive deployment) and
 * once with batching enabled, and reports latency percentiles and
 * throughput for both. Batching must win on two axes: the decoded
 * weight stream is reused across every token of a batch
 * (weight-stationary amortization), and wide batches give parallelFor
 * enough token tiles to fill the pool.
 *
 * Alongside the human-readable table the bench emits a machine-readable
 * BENCH_serve.json (path overridable as argv[1]; schema checked by
 * scripts/check_bench_json.py) — the tracked benchmark trajectory for
 * the serving path.
 */

#include <cstdio>
#include <string>

#include "common/parallel.h"
#include "common/table.h"
#include "core/msq_config.h"
#include "model/model_zoo.h"
#include "serve/engine.h"

using namespace msq;

namespace {

constexpr size_t kRequests = 96;
constexpr size_t kTokensPerRequest = 4;

/** Submit the identical request stream to an engine. */
void
submitStream(ServeEngine &engine)
{
    for (uint64_t r = 0; r < kRequests; ++r)
        engine.submit(kTokensPerRequest, 1000 + r);
}

void
addPhaseRows(Table &t, const char *phase, const ServeReport &rep)
{
    t.addRow({phase, "requests", Table::fmtInt(static_cast<long long>(
                                     rep.requests.size()))});
    t.addRow({"", "batches",
              Table::fmtInt(static_cast<long long>(rep.batches))});
    t.addRow({"", "p50 / p95 / p99 latency (ms)",
              Table::fmt(rep.p50Ms, 2) + " / " + Table::fmt(rep.p95Ms, 2) +
                  " / " + Table::fmt(rep.p99Ms, 2)});
    t.addRow({"", "throughput (tokens/s)", Table::fmt(rep.tokensPerSec, 1)});
    t.addRow({"", "integer MACs/s",
              Table::fmt(rep.macsPerSec / 1e6, 1) + " M"});
}

void
writePhaseJson(std::FILE *f, const char *name, const ServeReport &rep)
{
    std::fprintf(f,
                 "  \"%s\": {\n"
                 "    \"requests\": %zu,\n"
                 "    \"batches\": %zu,\n"
                 "    \"tokens\": %zu,\n"
                 "    \"wall_ms\": %.3f,\n"
                 "    \"latency_ms\": {\"p50\": %.4f, \"p95\": %.4f, "
                 "\"p99\": %.4f, \"mean\": %.4f, \"max\": %.4f},\n"
                 "    \"requests_per_s\": %.2f,\n"
                 "    \"tokens_per_s\": %.2f,\n"
                 "    \"macs_per_s\": %.1f\n"
                 "  }",
                 name, rep.requests.size(), rep.batches, rep.tokens,
                 rep.wallMs, rep.p50Ms, rep.p95Ms, rep.p99Ms, rep.meanMs,
                 rep.maxMs, rep.requestsPerSec, rep.tokensPerSec,
                 rep.macsPerSec);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path =
        argc > 1 ? argv[1] : "BENCH_serve.json";
    const ModelProfile &model = modelByName("LLaMA2-7B");
    MsqConfig qcfg;  // paper headline: W2, e1m2 outliers

    // The paper's serving regime is decode-heavy: many small requests.
    // Single-request config = scheduler disabled.
    ServeConfig single;
    single.maxBatchRequests = 1;
    single.tileTokens = 16;
    ServeConfig batched;
    batched.maxBatchRequests = 32;
    batched.maxBatchTokens = 256;
    batched.tileTokens = 16;

    // Warm the packed-weight cache outside every timed region (both
    // engines share the deployment).
    ServeEngine engine_single(model, qcfg, single);
    ServeEngine engine_batched(model, qcfg, batched);
    const PackedModel &packed = engine_single.packedModel();

    submitStream(engine_single);
    const ServeReport rep_s = engine_single.drain();
    submitStream(engine_batched);
    const ServeReport rep_b = engine_batched.drain();

    const double speedup =
        rep_s.tokensPerSec > 0.0 ? rep_b.tokensPerSec / rep_s.tokensPerSec
                                 : 0.0;

    Table t("Serving throughput, " + model.name + ", " +
            qcfg.name() + " packed execution (" +
            std::to_string(threadCount()) + " threads)");
    t.setHeader({"phase", "quantity", "value"});
    t.addRow({"deploy", "packed build (ms)", Table::fmt(packed.buildMs, 1)});
    t.addRow({"", "EBW (Eq. 4)", Table::fmt(packed.meanEbw, 3) + " bits"});
    t.addRow({"", "MACs/token",
              Table::fmt(static_cast<double>(packed.termsPerToken) / 1e3,
                         1) +
                  " k"});
    t.addSeparator();
    addPhaseRows(t, "single", rep_s);
    t.addSeparator();
    addPhaseRows(t, "batched", rep_b);
    t.addSeparator();
    t.addRow({"", "batched / single throughput",
              Table::fmt(speedup, 2) + "x"});
    t.print();

    std::FILE *f = std::fopen(json_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"serve_throughput\",\n"
                 "  \"model\": \"%s\",\n"
                 "  \"method\": \"%s\",\n"
                 "  \"threads\": %u,\n"
                 "  \"tokens_per_request\": %zu,\n"
                 "  \"build_ms\": %.1f,\n"
                 "  \"ebw_bits\": %.4f,\n"
                 "  \"macs_per_token\": %zu,\n",
                 model.name.c_str(), qcfg.name().c_str(), threadCount(),
                 kTokensPerRequest, packed.buildMs, packed.meanEbw,
                 packed.termsPerToken);
    writePhaseJson(f, "single", rep_s);
    std::fprintf(f, ",\n");
    writePhaseJson(f, "batched", rep_b);
    std::fprintf(f, ",\n  \"speedup\": %.4f\n}\n", speedup);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
    return 0;
}
