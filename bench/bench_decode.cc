/**
 * @file
 * Autoregressive-generation benchmark: streams a mixed-length request
 * mix through the decode engine twice — once with static batching (a
 * batch of sequences runs to completion before the next is admitted,
 * the naive deployment) and once with iteration-level continuous
 * batching (freed slots are refilled between decode steps) — and
 * reports prefill and steady-state decode throughput for both.
 *
 * Continuous batching must win on mixed lengths: static batches drain
 * to a one-sequence straggler whose steps still pay the full
 * weight-stream walk of every projection, while continuous admission
 * keeps the step batch wide so the walk is amortized over more tokens
 * (the same weight-stationary argument as the batching engine,
 * serve/engine.h). The token streams themselves are identical in both
 * modes — the scheduler only moves *when* tokens are computed — which
 * the emitted per-phase token checksums pin down.
 *
 * A third phase streams a shared-prefix request mix (N prompts that
 * differ only in their last token) twice — once with the cross-request
 * prefix cache disabled (every request pays the full prefill) and once
 * with it enabled (the first request prefills the prefix, the rest
 * adopt its closed KV pages) — and reports the prefill-work speedup.
 * The ratio is counted in prefill tokens, not wall time, so the CI
 * floor measures the one-prefill guarantee rather than box noise.
 *
 * Alongside the human-readable table the bench emits a machine-readable
 * BENCH_decode.json (path overridable as argv[1]; model as argv[2] —
 * CI runs a TinyLM-decode smoke pass; schema checked by
 * scripts/check_bench_json.py, which enforces the continuous >= 1.3x
 * static floor on steady-state decode throughput, the prefix-hit
 * prefill-work floor, and a steady-state KV re-gather count of zero).
 */

#include <cstdio>
#include <utility>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/msq_config.h"
#include "model/model_zoo.h"
#include "serve/decode.h"

using namespace msq;

namespace {

constexpr size_t kRequests = 48;

/** KV pool recipe used by both phases (and echoed into the JSON). */
const KvCacheConfig kKv{2, 16, 16};

struct Workload
{
    std::vector<std::vector<uint32_t>> prompts;
    std::vector<size_t> maxNew;
    size_t promptTokens = 0;
};

/** Mixed-length mix: mostly short generations plus long stragglers. */
Workload
makeWorkload(size_t vocab)
{
    Workload w;
    for (size_t i = 0; i < kRequests; ++i) {
        Rng rng(5000 + i);
        const size_t len = 4 + i % 5;
        std::vector<uint32_t> prompt(len);
        for (uint32_t &tok : prompt)
            tok = static_cast<uint32_t>(rng.uniformInt(vocab));
        w.promptTokens += len;
        w.prompts.push_back(std::move(prompt));
        // One long straggler per static batch of maxBatchSeqs requests: static
        // batches drain to a single resident sequence for most of their
        // lifetime, which is exactly the regime continuous admission
        // repairs.
        w.maxNew.push_back(i % 12 == 0 ? 48 : 1);
    }
    return w;
}

constexpr size_t kPrefixRequests = 24;
constexpr size_t kPrefixTokens = 48;

/**
 * Shared-prefix mix: every prompt is the same kPrefixTokens-token
 * prefix plus one distinguishing tail token, so the engine-side
 * cacheable prefix (prompt minus its last token) is identical across
 * all requests and the warm pass should prefill it exactly once.
 */
Workload
makePrefixWorkload(size_t vocab)
{
    Workload w;
    Rng rng(7100);
    std::vector<uint32_t> prefix(kPrefixTokens);
    for (uint32_t &tok : prefix)
        tok = static_cast<uint32_t>(rng.uniformInt(vocab));
    for (size_t i = 0; i < kPrefixRequests; ++i) {
        std::vector<uint32_t> prompt = prefix;
        prompt.push_back(static_cast<uint32_t>((i * 7 + 1) % vocab));
        w.promptTokens += prompt.size();
        w.prompts.push_back(std::move(prompt));
        w.maxNew.push_back(6);
    }
    return w;
}

/** Order-independent digest of every request's generated stream. */
uint64_t
tokenChecksum(const DecodeReport &rep)
{
    uint64_t sum = 0;
    for (const GenRecord &rec : rep.requests) {
        uint64_t h = rec.id * 0x9e3779b97f4a7c15ULL;
        for (uint32_t tok : rec.tokens)
            h = (h ^ tok) * 0x100000001b3ULL;
        sum += h;
    }
    return sum & 0xffffffffULL;  // keep the JSON integer exact
}

DecodeReport
runMode(const ModelProfile &model, const MsqConfig &qcfg,
        const Workload &w, bool continuous)
{
    DecodeConfig cfg;
    cfg.maxBatchSeqs = 12;
    cfg.stepTokenBudget = 64;
    cfg.prefillChunk = 16;
    cfg.continuousBatching = continuous;
    cfg.kv = kKv;
    cfg.vocab = 128;
    // Static-vs-continuous must measure scheduling only; the prompt mix
    // is below the prefix-cache threshold anyway, but be explicit.
    cfg.usePrefixCache = false;
    DecodeEngine engine(model, qcfg, cfg);
    for (size_t i = 0; i < w.prompts.size(); ++i)
        engine.submit(w.prompts[i], w.maxNew[i]);
    return engine.run();
}

DecodeReport
runPrefixMode(const ModelProfile &model, const MsqConfig &qcfg,
              const Workload &w, bool useCache)
{
    DecodeConfig cfg;
    cfg.maxBatchSeqs = 12;
    cfg.stepTokenBudget = 64;
    cfg.prefillChunk = 16;
    cfg.continuousBatching = true;
    cfg.kv = kKv;
    cfg.vocab = 128;
    cfg.usePrefixCache = useCache;
    DecodeEngine engine(model, qcfg, cfg);
    for (size_t i = 0; i < w.prompts.size(); ++i)
        engine.submit(w.prompts[i], w.maxNew[i]);
    return engine.run();
}

void
addPhaseRows(Table &t, const char *phase, const DecodeReport &rep)
{
    t.addRow({phase, "scheduler steps",
              Table::fmtInt(static_cast<long long>(rep.steps))});
    t.addRow({"", "pure-decode steps",
              Table::fmtInt(static_cast<long long>(rep.decodeSteps))});
    t.addRow({"", "mean active sequences",
              Table::fmt(rep.meanActiveSeqs, 2)});
    t.addRow({"", "prefill throughput (tok/s)",
              Table::fmt(rep.prefillTokensPerSec, 1)});
    t.addRow({"", "decode throughput (tok/s)",
              Table::fmt(rep.decodeTokensPerSec, 1)});
    t.addRow({"", "overall generated (tok/s)",
              Table::fmt(rep.generatedTokensPerSec, 1)});
    t.addRow({"", "wall (ms)", Table::fmt(rep.wallMs, 1)});
}

void
writePhaseJson(std::FILE *f, const char *name, const DecodeReport &rep)
{
    std::fprintf(f,
                 "  \"%s\": {\n"
                 "    \"steps\": %zu,\n"
                 "    \"decode_steps\": %zu,\n"
                 "    \"mean_active\": %.4f,\n"
                 "    \"wall_ms\": %.3f,\n"
                 "    \"prefill_tokens_per_s\": %.2f,\n"
                 "    \"decode_tokens_per_s\": %.2f,\n"
                 "    \"generated_tokens_per_s\": %.2f,\n"
                 "    \"token_checksum\": %llu\n"
                 "  }",
                 name, rep.steps, rep.decodeSteps, rep.meanActiveSeqs,
                 rep.wallMs, rep.prefillTokensPerSec,
                 rep.decodeTokensPerSec, rep.generatedTokensPerSec,
                 static_cast<unsigned long long>(tokenChecksum(rep)));
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path =
        argc > 1 ? argv[1] : "BENCH_decode.json";
    const std::string model_name = argc > 2 ? argv[2] : "LLaMA2-7B";
    const ModelProfile &model = modelByName(model_name);
    if (!decodeCapable(model)) {
        std::fprintf(stderr, "%s carries no attention geometry\n",
                     model.name.c_str());
        return 1;
    }
    MsqConfig qcfg;  // paper headline: W2, e1m2 outliers

    const Workload w = makeWorkload(128);

    // Warm the packed-weight cache outside every timed region.
    { DecodeEngine warm(model, qcfg, DecodeConfig{}); }

    // Best of three interleaved passes per mode: token streams are
    // deterministic (only timings vary), so keeping the fastest pass
    // just filters scheduler noise on loaded machines — the ratio the
    // CI floor gates must measure scheduling, not a noisy neighbour.
    DecodeReport rep_s = runMode(model, qcfg, w, false);
    DecodeReport rep_c = runMode(model, qcfg, w, true);
    for (int pass = 1; pass < 3; ++pass) {
        DecodeReport s2 = runMode(model, qcfg, w, false);
        DecodeReport c2 = runMode(model, qcfg, w, true);
        if (s2.decodeTokensPerSec > rep_s.decodeTokensPerSec)
            rep_s = std::move(s2);
        if (c2.decodeTokensPerSec > rep_c.decodeTokensPerSec)
            rep_c = std::move(c2);
    }
    const double speedup =
        rep_s.decodeTokensPerSec > 0.0
            ? rep_c.decodeTokensPerSec / rep_s.decodeTokensPerSec
            : 0.0;

    // Shared-prefix phase: cold (cache off) vs warm (cache on). The
    // speedup is counted in prefill tokens — the warm pass prefills the
    // shared prefix once and each request's tail token, nothing else.
    const Workload wp = makePrefixWorkload(128);
    const DecodeReport rep_cold = runPrefixMode(model, qcfg, wp, false);
    const DecodeReport rep_warm = runPrefixMode(model, qcfg, wp, true);
    const double prefix_speedup =
        rep_warm.prefillTokens > 0
            ? static_cast<double>(rep_cold.prefillTokens) /
                  static_cast<double>(rep_warm.prefillTokens)
            : 0.0;
    const size_t total_tokens = w.promptTokens + rep_c.generatedTokens;
    const double kv_bytes_per_token =
        total_tokens > 0 ? static_cast<double>(rep_c.kvCapacityBytes) /
                               static_cast<double>(total_tokens)
                         : 0.0;

    const DecodeGeometry &g = model.decode;
    Table t("Autoregressive decode, " + model.name + ", " + qcfg.name() +
            " + 2-bit KV pool (" + std::to_string(threadCount()) +
            " threads)");
    t.setHeader({"phase", "quantity", "value"});
    t.addRow({"model", "blocks / heads / kv heads / head dim",
              Table::fmtInt(static_cast<long long>(g.blocks)) + " / " +
                  Table::fmtInt(static_cast<long long>(g.heads)) + " / " +
                  Table::fmtInt(static_cast<long long>(g.kvHeads)) +
                  " / " +
                  Table::fmtInt(static_cast<long long>(g.headDim))});
    t.addRow({"", "requests / prompt / generated",
              Table::fmtInt(static_cast<long long>(kRequests)) + " / " +
                  Table::fmtInt(
                      static_cast<long long>(w.promptTokens)) +
                  " / " +
                  Table::fmtInt(static_cast<long long>(
                      rep_c.generatedTokens))});
    t.addRow({"", "KV packed / residual bytes",
              Table::fmtInt(static_cast<long long>(rep_c.kvPackedBytes)) +
                  " / " +
                  Table::fmtInt(
                      static_cast<long long>(rep_c.kvFpBytes))});
    t.addSeparator();
    addPhaseRows(t, "static", rep_s);
    t.addSeparator();
    addPhaseRows(t, "continuous", rep_c);
    t.addSeparator();
    t.addRow({"", "continuous / static decode throughput",
              Table::fmt(speedup, 2) + "x"});
    t.addSeparator();
    t.addRow({"kv arena", "capacity bytes at retirement",
              Table::fmtInt(
                  static_cast<long long>(rep_c.kvCapacityBytes))});
    t.addRow({"", "arena peak bytes",
              Table::fmtInt(
                  static_cast<long long>(rep_c.kvArenaPeakBytes))});
    t.addRow({"", "kv bytes / token", Table::fmt(kv_bytes_per_token, 1)});
    t.addRow({"", "gathers first/close/grow/steady",
              Table::fmtInt(static_cast<long long>(rep_c.kvGatherFirst)) +
                  " / " +
                  Table::fmtInt(
                      static_cast<long long>(rep_c.kvGatherClose)) +
                  " / " +
                  Table::fmtInt(
                      static_cast<long long>(rep_c.kvGatherGrow)) +
                  " / " +
                  Table::fmtInt(
                      static_cast<long long>(rep_c.kvGatherSteady))});
    t.addSeparator();
    t.addRow({"prefix", "requests x (prefix + tail)",
              Table::fmtInt(static_cast<long long>(kPrefixRequests)) +
                  " x (" +
                  Table::fmtInt(static_cast<long long>(kPrefixTokens)) +
                  " + 1)"});
    t.addRow({"", "cold prefill tokens",
              Table::fmtInt(
                  static_cast<long long>(rep_cold.prefillTokens))});
    t.addRow({"", "warm prefill tokens",
              Table::fmtInt(
                  static_cast<long long>(rep_warm.prefillTokens))});
    t.addRow({"", "warm hits / inserts / adopted tokens",
              Table::fmtInt(static_cast<long long>(rep_warm.prefixHits)) +
                  " / " +
                  Table::fmtInt(
                      static_cast<long long>(rep_warm.prefixInserts)) +
                  " / " +
                  Table::fmtInt(static_cast<long long>(
                      rep_warm.prefixAdoptedTokens))});
    t.addRow({"", "prefill-work speedup (cold / warm)",
              Table::fmt(prefix_speedup, 2) + "x"});
    t.print();

    std::FILE *f = std::fopen(json_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"decode\",\n"
                 "  \"model\": \"%s\",\n"
                 "  \"method\": \"%s\",\n"
                 "  \"threads\": %u,\n"
                 "  \"blocks\": %zu,\n"
                 "  \"heads\": %zu,\n"
                 "  \"kv_heads\": %zu,\n"
                 "  \"head_dim\": %zu,\n"
                 "  \"kv_bits\": %u,\n"
                 "  \"kv_group\": %zu,\n"
                 "  \"kv_residual\": %zu,\n"
                 "  \"requests\": %zu,\n"
                 "  \"prompt_tokens\": %zu,\n"
                 "  \"generated_tokens\": %zu,\n"
                 "  \"kv_packed_bytes\": %zu,\n"
                 "  \"kv_fp_bytes\": %zu,\n",
                 model.name.c_str(), qcfg.name().c_str(), threadCount(),
                 g.blocks, g.heads, g.kvHeads, g.headDim, kKv.bits,
                 kKv.groupSize, kKv.residual, kRequests, w.promptTokens,
                 rep_c.generatedTokens, rep_c.kvPackedBytes,
                 rep_c.kvFpBytes);
    std::fprintf(f,
                 "  \"kv_capacity_bytes\": %zu,\n"
                 "  \"kv_arena_peak_bytes\": %zu,\n"
                 "  \"kv_bytes_per_token\": %.4f,\n"
                 "  \"kv_gather\": {\"first\": %zu, \"close\": %zu, "
                 "\"grow\": %zu, \"steady\": %zu},\n",
                 rep_c.kvCapacityBytes, rep_c.kvArenaPeakBytes,
                 kv_bytes_per_token, rep_c.kvGatherFirst,
                 rep_c.kvGatherClose, rep_c.kvGatherGrow,
                 rep_c.kvGatherSteady);
    std::fprintf(
        f,
        "  \"prefix\": {\n"
        "    \"requests\": %zu,\n"
        "    \"prefix_tokens\": %zu,\n"
        "    \"cold\": {\"prefill_tokens\": %zu, \"wall_ms\": %.3f, "
        "\"prefill_tokens_per_s\": %.2f, \"token_checksum\": %llu},\n"
        "    \"warm\": {\"prefill_tokens\": %zu, \"wall_ms\": %.3f, "
        "\"prefill_tokens_per_s\": %.2f, \"token_checksum\": %llu, "
        "\"hits\": %llu, \"inserts\": %llu, \"adopted_tokens\": %zu, "
        "\"gather_steady\": %zu},\n"
        "    \"prefill_speedup\": %.4f\n"
        "  },\n",
        kPrefixRequests, kPrefixTokens, rep_cold.prefillTokens,
        rep_cold.wallMs, rep_cold.prefillTokensPerSec,
        static_cast<unsigned long long>(tokenChecksum(rep_cold)),
        rep_warm.prefillTokens, rep_warm.wallMs,
        rep_warm.prefillTokensPerSec,
        static_cast<unsigned long long>(tokenChecksum(rep_warm)),
        static_cast<unsigned long long>(rep_warm.prefixHits),
        static_cast<unsigned long long>(rep_warm.prefixInserts),
        rep_warm.prefixAdoptedTokens, rep_warm.kvGatherSteady,
        prefix_speedup);
    writePhaseJson(f, "static", rep_s);
    std::fprintf(f, ",\n");
    writePhaseJson(f, "continuous", rep_c);
    std::fprintf(f, ",\n  \"speedup\": %.4f\n}\n", speedup);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
    return 0;
}
