/**
 * @file
 * Fig. 11 proxy: the paper shows qualitative 8-shot COCO captions
 * where OliVe-W4 mislabels objects while MicroScopiQ-W2 stays
 * faithful. Captions cannot be reproduced without the real VLM, so
 * this bench measures the mechanism behind the qualitative result:
 * the cosine similarity between the FP and quantized layer outputs
 * (the representation the language head decodes from). A similarity
 * near 1 preserves the argmax token chain; OliVe's outlier destruction
 * drops it enough to flip tokens.
 */

#include <cmath>

#include "bench_util.h"
#include "common/table.h"
#include "model/calib_gen.h"
#include "model/weight_gen.h"
#include "quant/hessian.h"

using namespace msq;
using namespace msq::bench;

namespace {

/** Mean cosine similarity between FP and quantized outputs per token. */
double
outputCosine(const Matrix &w, const Matrix &wq, const Matrix &x)
{
    const Matrix ref = w.transposedMatmul(x);
    const Matrix out = wq.transposedMatmul(x);
    double acc = 0.0;
    for (size_t t = 0; t < ref.cols(); ++t) {
        double dot = 0.0, na = 0.0, nb = 0.0;
        for (size_t o = 0; o < ref.rows(); ++o) {
            dot += ref(o, t) * out(o, t);
            na += ref(o, t) * ref(o, t);
            nb += out(o, t) * out(o, t);
        }
        acc += dot / (std::sqrt(na * nb) + 1e-30);
    }
    return acc / static_cast<double>(ref.cols());
}

} // namespace

int
main()
{
    const ModelProfile &model = modelByName("OpenFlamingo-9B");

    Table t("Fig. 11 proxy: representation fidelity on 8-shot COCO "
            "captioning\n(cosine similarity of FP vs quantized layer "
            "outputs; 1.0 = captions preserved)");
    t.setHeader({"method", "mean cosine", "verdict"});

    struct Entry
    {
        const char *name;
        QuantMethod method;
    };
    std::vector<Entry> entries;
    entries.push_back({"MicroScopiQ-W2", microScopiQMethod(2)});
    entries.push_back({"MicroScopiQ-W4", microScopiQMethod(4)});
    entries.push_back({"OliVe-W4", oliveMethod(4)});

    for (Entry &e : entries) {
        double acc = 0.0;
        for (size_t li = 0; li < model.layers.size(); ++li) {
            const Matrix w = generateLayerWeights(model, li);
            const Matrix calib = generateCalibration(
                model, li, 4 * model.layers[li].k);
            const Matrix x = generateEvalSet(model, li, 64);
            QuantizerPtr q = e.method.makeQuantizer();
            const QuantResult res = q->quantize(w, calib);
            acc += outputCosine(w, res.dequant, x);
        }
        const double cosine =
            acc / static_cast<double>(model.layers.size());
        t.addRow({e.name, Table::fmt(cosine, 4),
                  cosine > 0.97 ? "captions preserved"
                                : "object words at risk"});
        clearHessianCache();
    }
    t.print();
    std::puts("Paper's qualitative finding: OliVe-W4 mislabels (boat -> "
              "van), MicroScopiQ-W2\nstays accurate despite half the "
              "bits; the fidelity gap above is the mechanism.");
    return 0;
}
