/**
 * @file
 * Table 5 reproduction: compute area breakdown, compute overhead and
 * compute density for the 64x64 MicroScopiQ, OliVe and GOBO designs at
 * 7 nm, assembled from the paper's published per-component areas.
 */

#include "accel/area.h"
#include "common/table.h"

using namespace msq;

namespace {

void
printBreakdown(const AreaBreakdown &area, double macs_per_pe,
               double paper_area, double paper_overhead,
               double paper_density)
{
    Table t(area.design + " (64x64 array)");
    t.setHeader({"component", "unit um^2", "count", "total um^2"});
    for (const AreaComponent &c : area.components) {
        t.addRow({c.name, Table::fmt(c.unitAreaUm2, 2),
                  Table::fmtInt(static_cast<long long>(c.count)),
                  Table::fmt(c.totalUm2(), 1)});
    }
    t.addSeparator();
    t.addRow({"compute area (mm^2)",
              "paper " + Table::fmt(paper_area, 3),
              "ours", Table::fmt(area.computeAreaMm2(), 4)});
    t.addRow({"compute overhead (%)",
              "paper " + Table::fmt(paper_overhead, 2),
              "ours", Table::fmt(100.0 * area.overheadFraction(), 2)});
    t.addRow({"density (TOPS/mm^2)",
              "paper " + Table::fmt(paper_density, 2),
              "ours",
              Table::fmt(computeDensityTops(area, 64 * 64, macs_per_pe),
                         2)});
    t.print();
}

} // namespace

int
main()
{
    std::puts("Table 5: compute area and density at 7 nm. Density uses "
              "1 MAC = 2 ops\nat native precision (the paper's op "
              "normalization is unstated; the ratios\nare the claim: "
              "MicroScopiQ ~2x OliVe, >>10x GOBO).\n");

    printBreakdown(goboArea(64, 64, 0), 1.0, 0.216, 3.28, 28.28);
    printBreakdown(oliveArea(64, 64, 0), 1.0, 0.011, 9.90, 184.30);
    printBreakdown(microScopiQArea(64, 64, 1, 0), 2.0, 0.012, 8.63,
                   367.51);

    const double d_ms =
        computeDensityTops(microScopiQArea(64, 64, 1, 0), 64 * 64, 2.0);
    const double d_ol = computeDensityTops(oliveArea(64, 64, 0), 64 * 64,
                                           1.0);
    const double d_gb = computeDensityTops(goboArea(64, 64, 0), 64 * 64,
                                           1.0);
    std::printf("Density ratios: MicroScopiQ/OliVe = %.2fx (paper 1.99x), "
                "MicroScopiQ/GOBO = %.1fx (paper 13.0x)\n",
                d_ms / d_ol, d_ms / d_gb);
    return 0;
}
