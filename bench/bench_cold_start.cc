/**
 * @file
 * Cold-start benchmark for the persistent `.msq` weight cache: deploy
 * the same model twice through `getPackedModel` with a disk tier —
 * once against an empty cache directory (quantize: Hessian build, GPTQ
 * sweep, packing, then container write) and once against the container
 * the first pass produced (load: read, CRC-validate, decode). The
 * in-memory tier is cleared between passes, so each build time is a
 * true process-cold start. The whole point of the container format is
 * the gap between these two numbers.
 *
 * Alongside the human-readable table the bench emits a machine-readable
 * BENCH_cold_start.json (path overridable as argv[1]; cache directory
 * as argv[2], default "."; schema checked by
 * scripts/check_bench_json.py) — the tracked benchmark trajectory for
 * the persistence path.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/parallel.h"
#include "common/table.h"
#include "io/msq_file.h"
#include "model/model_zoo.h"
#include "serve/weight_cache.h"

using namespace msq;

int
main(int argc, char **argv)
{
    const std::string json_path =
        argc > 1 ? argv[1] : "BENCH_cold_start.json";
    const std::string cache_dir = argc > 2 ? argv[2] : ".";
    const ModelProfile &model = modelByName("LLaMA2-7B");
    MsqConfig qcfg; // paper headline: W2, e1m2 outliers
    const size_t calib_tokens = 128;

    const std::string container =
        cache_dir + "/" + packedModelCacheFile(model, qcfg, calib_tokens);
    std::remove(container.c_str()); // pass 1 must quantize

    // Pass 1: cold start with no container — quantize and persist.
    clearPackedModelCache();
    const PackedModelPtr quantized =
        getPackedModel(model, qcfg, calib_tokens, cache_dir);
    if (quantized->source != "quantize") {
        std::fprintf(stderr, "pass 1 unexpectedly hit the disk cache\n");
        return 1;
    }
    const double quantize_ms = quantized->buildMs;

    // Pass 2: cold start from the container the first pass wrote.
    clearPackedModelCache();
    const PackedModelPtr loaded =
        getPackedModel(model, qcfg, calib_tokens, cache_dir);
    if (loaded->source != "disk") {
        std::fprintf(stderr, "pass 2 did not load from %s\n",
                     container.c_str());
        return 1;
    }
    const double load_ms = loaded->buildMs;

    // The two deployments must be byte-for-byte the same weights.
    if (loaded->layers.size() != quantized->layers.size()) {
        std::fprintf(stderr, "layer count mismatch after reload\n");
        return 1;
    }
    for (size_t li = 0; li < loaded->layers.size(); ++li)
        if (loaded->layers[li].serialize() !=
            quantized->layers[li].serialize()) {
            std::fprintf(stderr, "layer %zu bytes changed on reload\n", li);
            return 1;
        }

    MsqReader reader;
    uint64_t container_bytes = 0;
    if (reader.open(container))
        container_bytes = reader.fileBytes();

    const double speedup = load_ms > 0.0 ? quantize_ms / load_ms : 0.0;

    Table t("Cold start, " + model.name + ", " + qcfg.name() +
            " (" + std::to_string(threadCount()) + " threads)");
    t.setHeader({"path", "quantity", "value"});
    t.addRow({"quantize", "PTQ + container write (ms)",
              Table::fmt(quantize_ms, 1)});
    t.addRow({"load", "container read + decode (ms)",
              Table::fmt(load_ms, 1)});
    t.addSeparator();
    t.addRow({"", "container bytes",
              Table::fmtInt(static_cast<long long>(container_bytes))});
    t.addRow({"", "EBW (Eq. 4)", Table::fmt(loaded->meanEbw, 3) + " bits"});
    t.addRow({"", "layers",
              Table::fmtInt(static_cast<long long>(loaded->layers.size()))});
    t.addRow({"", "quantize / load speedup",
              Table::fmt(speedup, 1) + "x"});
    t.print();

    std::FILE *f = std::fopen(json_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"cold_start\",\n"
                 "  \"model\": \"%s\",\n"
                 "  \"method\": \"%s\",\n"
                 "  \"threads\": %u,\n"
                 "  \"layers\": %zu,\n"
                 "  \"container_bytes\": %llu,\n"
                 "  \"ebw_bits\": %.4f,\n"
                 "  \"quantize_ms\": %.3f,\n"
                 "  \"load_ms\": %.3f,\n"
                 "  \"speedup\": %.4f\n"
                 "}\n",
                 model.name.c_str(), qcfg.name().c_str(), threadCount(),
                 loaded->layers.size(),
                 static_cast<unsigned long long>(container_bytes),
                 loaded->meanEbw, quantize_ms, load_ms, speedup);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
    return 0;
}
