/**
 * @file
 * Table 4 reproduction: non-transformer models (CNNs and SSMs),
 * ImageNet Top-1 proxy accuracy for MicroScopiQ at W4A4, W2A8, W2A4.
 */

#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "quant/hessian.h"

using namespace msq;
using namespace msq::bench;

int
main()
{
    struct Row
    {
        const char *model;
        double paper_w44;
        double paper_w28;
        double paper_w24;  // <0 = not reported
    };
    const std::vector<Row> rows = {
        {"ResNet50", 75.08, 75.12, 73.61},
        {"VGG16", 70.84, 70.87, 69.12},
        {"VMamba-S", 70.07, 66.52, -1.0},
        {"Vim-S", 71.52, 71.98, -1.0},
    };

    PipelineConfig cfg;
    cfg.calibTokens = 64;  // paper: 64 ImageNet samples
    cfg.evalTokens = 96;

    Table t("Table 4: CNN / SSM Top-1 accuracy % "
            "(paper -> measured proxy)");
    t.setHeader({"model", "FP16", "MSQ W4A4", "MSQ W2A8", "MSQ W2A4"});
    for (const Row &r : rows) {
        const ModelProfile &model = modelByName(r.model);
        auto run = [&](unsigned wbits, unsigned abits) {
            const ModelEvalResult res = evaluateMethodOnModel(
                model, microScopiQWaMethod(wbits, abits), cfg);
            return res.proxyAcc;
        };
        const double w44 = run(4, 4);
        const double w28 = run(2, 8);
        const double w24 = r.paper_w24 > 0 ? run(2, 4) : -1.0;
        auto cell = [](double paper, double measured) {
            if (paper < 0)
                return std::string("-");
            return Table::fmt(paper, 2) + " -> " + Table::fmt(measured, 2);
        };
        t.addRow({r.model, Table::fmt(model.fpMetric, 2),
                  cell(r.paper_w44, w44), cell(r.paper_w28, w28),
                  cell(r.paper_w24, w24)});
        clearHessianCache();
    }
    t.print();
    std::puts("Claims under test: near-lossless W4A4 / W2A8 on CNNs; "
              "large gains over\nSSM baselines (paper: +30% over QMamba).");
    return 0;
}
