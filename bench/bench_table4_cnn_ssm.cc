/**
 * @file
 * Table 4 reproduction: non-transformer models (CNNs and SSMs),
 * ImageNet Top-1 proxy accuracy for MicroScopiQ at W4A4, W2A8, W2A4.
 */

#include <vector>

#include "bench_util.h"
#include "common/table.h"

using namespace msq;
using namespace msq::bench;

int
main()
{
    struct Row
    {
        const char *model;
        double paper_w44;
        double paper_w28;
        double paper_w24;  // <0 = not reported
    };
    const std::vector<Row> rows = {
        {"ResNet50", 75.08, 75.12, 73.61},
        {"VGG16", 70.84, 70.87, 69.12},
        {"VMamba-S", 70.07, 66.52, -1.0},
        {"Vim-S", 71.52, 71.98, -1.0},
    };

    PipelineConfig cfg;
    cfg.calibTokens = 64;  // paper: 64 ImageNet samples
    cfg.evalTokens = 96;

    Table t("Table 4: CNN / SSM Top-1 accuracy % "
            "(paper -> measured proxy)");
    t.setHeader({"model", "FP16", "MSQ W4A4", "MSQ W2A8", "MSQ W2A4"});

    // Flatten the model x setting grid (skipping the settings the
    // paper does not report) into one parallel sweep.
    std::vector<SweepCell> cells;
    std::vector<size_t> first_cell(rows.size());
    for (size_t ri = 0; ri < rows.size(); ++ri) {
        const ModelProfile &model = modelByName(rows[ri].model);
        first_cell[ri] = cells.size();
        cells.push_back({&model, microScopiQWaMethod(4, 4)});
        cells.push_back({&model, microScopiQWaMethod(2, 8)});
        if (rows[ri].paper_w24 > 0)
            cells.push_back({&model, microScopiQWaMethod(2, 4)});
    }
    const std::vector<ModelEvalResult> results = runSweep(cells, cfg);

    for (size_t ri = 0; ri < rows.size(); ++ri) {
        const Row &r = rows[ri];
        const ModelProfile &model = modelByName(r.model);
        const double w44 = results[first_cell[ri]].proxyAcc;
        const double w28 = results[first_cell[ri] + 1].proxyAcc;
        const double w24 =
            r.paper_w24 > 0 ? results[first_cell[ri] + 2].proxyAcc : -1.0;
        auto cell = [](double paper, double measured) {
            if (paper < 0)
                return std::string("-");
            return Table::fmt(paper, 2) + " -> " + Table::fmt(measured, 2);
        };
        t.addRow({r.model, Table::fmt(model.fpMetric, 2),
                  cell(r.paper_w44, w44), cell(r.paper_w28, w28),
                  cell(r.paper_w24, w24)});
    }
    t.print();
    std::puts("Claims under test: near-lossless W4A4 / W2A8 on CNNs; "
              "large gains over\nSSM baselines (paper: +30% over QMamba).");
    return 0;
}
