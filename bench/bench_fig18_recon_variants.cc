/**
 * @file
 * Fig. 18 reproduction.
 *
 * (a) Effect of the number of time-multiplexed ReCoN units on compute
 *     area and inference latency for a LLaMA3-8B workload (paper: 8
 *     units give 21% better latency at 1.58x compute area).
 * (b) Integration overhead of MicroScopiQ into NoC-based accelerators
 *     (MTIA-like: +3%, Eyeriss v2-like: +2.3% compute area).
 */

#include <vector>

#include "accel/area.h"
#include "accel/baselines.h"
#include "accel/cycle_model.h"
#include "common/table.h"
#include "model/model_zoo.h"

using namespace msq;

int
main()
{
    const ModelProfile &model = modelByName("LLaMA3-8B");
    const size_t d = model.realHidden;
    std::vector<Workload> wls;
    for (const auto &[k, o] :
         std::initializer_list<std::pair<size_t, size_t>>{
             {d, d + d / 2}, {d, d}, {d, 4 * d}, {4 * d, d}}) {
        Workload wl;
        wl.tokens = 12;  // enough batch to expose ReCoN contention
        wl.reduction = k;
        wl.outputs = o;
        wl.microOutlierFrac = 0.09;
        wls.push_back(wl);
    }

    // Paper series for side-by-side printing.
    const double paper_area[] = {1.0, 1.17, 1.31, 1.58};
    const double paper_lat[] = {1.0, 0.85, 0.82, 0.79};

    double base_cycles = 0.0;
    const double base_area =
        microScopiQArea(64, 64, 1, 0).computeAreaMm2();

    Table t("Fig. 18(a): ReCoN unit count trade-off, LLaMA3-8B "
            "(paper -> measured, normalized to 1 unit)");
    t.setHeader({"# ReCoN", "compute area", "latency"});
    size_t idx = 0;
    for (size_t units : {1u, 2u, 4u, 8u}) {
        AccelConfig cfg;
        cfg.reconUnits = units;
        CycleModel cm(cfg);
        Rng rng(11);
        const CycleStats s = cm.runAll(wls, rng);
        if (units == 1)
            base_cycles = static_cast<double>(s.totalCycles);
        const double area =
            microScopiQArea(64, 64, units, 0).computeAreaMm2();
        t.addRow({std::to_string(units),
                  Table::fmt(paper_area[idx], 2) + " -> " +
                      Table::fmt(area / base_area, 2),
                  Table::fmt(paper_lat[idx], 2) + " -> " +
                      Table::fmt(static_cast<double>(s.totalCycles) /
                                     base_cycles,
                                 2)});
        ++idx;
    }
    t.print();

    Table b("Fig. 18(b): MicroScopiQ integration into NoC accelerators");
    b.setHeader({"accelerator", "PE area %", "NoC area %",
                 "added compute area %", "paper"});
    for (const NocIntegration &study : nocIntegrationStudies()) {
        b.addRow({study.accelerator,
                  Table::fmt(100.0 * study.basePeAreaFrac, 1),
                  Table::fmt(100.0 * study.baseNocAreaFrac, 1),
                  Table::fmt(100.0 * study.reconAddedFrac, 1),
                  study.accelerator == std::string("MTIA-like")
                      ? "3.0 %"
                      : "2.3 %"});
    }
    b.print();
    return 0;
}
