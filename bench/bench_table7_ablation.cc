/**
 * @file
 * Table 7 reproduction: progressive ablation of the MicroScopiQ
 * pipeline on the LLaMA3-8B profile — INT-4 scalar, MX-INT-4 groups,
 * MX-INT-2 (the outlier-error spike), MX-FP outliers at coarse then
 * micro-block sharing, outlier pre-scaling, pruning, Hessian
 * compensation, activation quantization with migration, and finally
 * KV-cache quantization.
 */

#include <functional>

#include "bench_util.h"
#include "common/table.h"
#include "model/calib_gen.h"
#include "model/proxy_eval.h"
#include "model/weight_gen.h"
#include "quant/act_quant.h"
#include "quant/hessian.h"
#include "quant/kv_cache.h"
#include "quant/smoothquant.h"

using namespace msq;
using namespace msq::bench;

namespace {

/** Evaluate one ablation stage described by a quantization recipe. */
double
stageNmse(const ModelProfile &model, const QuantMethod &method,
          const PipelineConfig &cfg)
{
    const double nmse = evaluateMethodOnModel(model, method, cfg).meanNmse;
    clearHessianCache();
    return nmse;
}

QuantMethod
msqStage(const std::function<void(MsqConfig &)> &tweak,
         unsigned act_bits = 0, double alpha = 0.0)
{
    QuantMethod m;
    m.name = "stage";
    m.makeQuantizer = [tweak] {
        MsqConfig c;
        c.inlierBits = 2;
        tweak(c);
        return std::make_unique<MicroScopiQQuantizer>(c);
    };
    m.actBits = act_bits;
    m.migrationAlpha = alpha;
    return m;
}

} // namespace

int
main()
{
    const ModelProfile &model = modelByName("LLaMA3-8B");
    PipelineConfig cfg;
    cfg.calibTokens = 96;
    cfg.evalTokens = 96;

    Table t("Table 7: progressive component ablation, LLaMA3-8B "
            "(WikiText-2 PPL, paper -> measured proxy)");
    t.setHeader({"stage", "paper", "measured"});
    t.addRow({"Baseline W16A16", Table::fmt(6.13, 2),
              Table::fmt(model.fpMetric, 2)});

    auto add = [&](const std::string &label, double paper, double nmse) {
        t.addRow({label, Table::fmt(paper, 2),
                  Table::fmt(proxyPerplexity(model.fpMetric, nmse), 2)});
    };

    // INT-4 scalar quantization (per-tensor scale: group = whole row).
    {
        QuantMethod m{"int4", [] {
                          return std::make_unique<RtnQuantizer>(4, 0);
                      }};
        add("+ Quantize all weights to INT-4", 10.27,
            stageNmse(model, m, cfg));
    }
    // MX-INT-4 with 128 groups.
    add("+ Quantize all weights to MX-INT-4_128", 9.53,
        stageNmse(model,
                  msqStage([](MsqConfig &c) {
                      c.inlierBits = 4;
                      c.outlierMode = OutlierMode::None;
                      c.hessianCompensation = false;
                  }),
                  cfg));
    // MX-INT-2: the spike.
    add("+ Quantize all weights to MX-INT-2_128", 39.48,
        stageNmse(model,
                  msqStage([](MsqConfig &c) {
                      c.outlierMode = OutlierMode::None;
                      c.hessianCompensation = false;
                  }),
                  cfg));
    // Outliers to MX-FP-4 with macro-block (coarse) sharing.
    add("+ Quantize outliers to MX-FP-4_128,128", 10.96,
        stageNmse(model,
                  msqStage([](MsqConfig &c) {
                      c.outlierMode = OutlierMode::MxFpCoarse;
                      c.prescaleOutliers = false;
                      c.pruneAndRedistribute = false;
                      c.hessianCompensation = false;
                  }),
                  cfg));
    // Outliers to MX-FP-4 with micro-block sharing.
    add("+ Quantize outliers to MX-FP-4_8,8", 8.93,
        stageNmse(model,
                  msqStage([](MsqConfig &c) {
                      c.prescaleOutliers = false;
                      c.pruneAndRedistribute = false;
                      c.hessianCompensation = false;
                  }),
                  cfg));
    // Outlier magnitude pre-reduction by 2^Isf.
    add("+ Reduce outlier mag. by 2^Isf", 8.89,
        stageNmse(model,
                  msqStage([](MsqConfig &c) {
                      c.pruneAndRedistribute = false;
                      c.hessianCompensation = false;
                  }),
                  cfg));
    // Pruning of least important inliers (costs a little).
    add("+ Prune least imp. inliers per uB", 9.02,
        stageNmse(model,
                  msqStage([](MsqConfig &c) {
                      c.hessianCompensation = false;
                  }),
                  cfg));
    // Hessian error compensation per row block (recovers it).
    add("+ Compensate quantization errors/rB", 8.97,
        stageNmse(model, msqStage([](MsqConfig &) {}), cfg));
    // Activation quantization with migration alpha = 0.7.
    const double nmse_acts =
        stageNmse(model, msqStage([](MsqConfig &) {}, 8, 0.7), cfg);
    add("+ Quantize activations MX-INT-8_128, a=0.7", 9.08, nmse_acts);

    // KV-cache quantization: model the extra reconstruction error of
    // 2-bit KV on a synthetic attention cache and fold it in.
    {
        Rng rng(404);
        Matrix keys(128, 512), values(128, 512);
        for (size_t r = 0; r < 128; ++r) {
            for (size_t c = 0; c < 512; ++c) {
                keys(r, c) = rng.gaussian(0.0, 1.0);
                values(r, c) = rng.gaussian(0.0, 1.0);
            }
        }
        KvCacheConfig kv;
        const double kv_err =
            0.5 * (quantizeKeyCache(keys, kv).normalizedErrorTo(keys) +
                   quantizeValueCache(values, kv).normalizedErrorTo(values));
        // Attention attenuates KV reconstruction error before it
        // reaches the block output (softmax smoothing + residual
        // path); the 0.1 folding factor is a documented model constant.
        add("+ 2-bit KV-cache quantization", 9.58,
            nmse_acts + 0.1 * kv_err);
    }

    t.print();
    std::puts("Shape under test: MX groups < scalar; 2-bit spike; MX-FP "
              "outliers recover it;\nmicro sharing < coarse; prune "
              "costs a little; compensation recovers; acts and\nKV add "
              "small increments.");
    return 0;
}
