/**
 * @file
 * Table 7 reproduction: progressive ablation of the MicroScopiQ
 * pipeline on the LLaMA3-8B profile — INT-4 scalar, MX-INT-4 groups,
 * MX-INT-2 (the outlier-error spike), MX-FP outliers at coarse then
 * micro-block sharing, outlier pre-scaling, pruning, Hessian
 * compensation, activation quantization with migration, and finally
 * KV-cache quantization.
 */

#include <functional>

#include "bench_util.h"
#include "common/table.h"
#include "model/calib_gen.h"
#include "model/proxy_eval.h"
#include "model/weight_gen.h"
#include "quant/act_quant.h"
#include "quant/kv_cache.h"
#include "quant/smoothquant.h"

using namespace msq;
using namespace msq::bench;

namespace {

QuantMethod
msqStage(const std::function<void(MsqConfig &)> &tweak,
         unsigned act_bits = 0, double alpha = 0.0)
{
    QuantMethod m;
    m.name = "stage";
    m.makeQuantizer = [tweak] {
        MsqConfig c;
        c.inlierBits = 2;
        tweak(c);
        return std::make_unique<MicroScopiQQuantizer>(c);
    };
    m.actBits = act_bits;
    m.migrationAlpha = alpha;
    return m;
}

} // namespace

int
main()
{
    const ModelProfile &model = modelByName("LLaMA3-8B");
    PipelineConfig cfg;
    cfg.calibTokens = 96;
    cfg.evalTokens = 96;

    Table t("Table 7: progressive component ablation, LLaMA3-8B "
            "(WikiText-2 PPL, paper -> measured proxy)");
    t.setHeader({"stage", "paper", "measured"});
    t.addRow({"Baseline W16A16", Table::fmt(6.13, 2),
              Table::fmt(model.fpMetric, 2)});

    auto add = [&](const std::string &label, double paper, double nmse) {
        t.addRow({label, Table::fmt(paper, 2),
                  Table::fmt(proxyPerplexity(model.fpMetric, nmse), 2)});
    };

    // The ablation stages are independent quantization recipes on the
    // same model, so they run as one parallel sweep; rows are emitted
    // from the results afterwards, in stage order.
    struct Stage
    {
        const char *label;
        double paper;
        QuantMethod method;
    };
    std::vector<Stage> stages;

    // INT-4 scalar quantization (per-tensor scale: group = whole row).
    stages.push_back({"+ Quantize all weights to INT-4", 10.27,
                      QuantMethod{"int4",
                                  [] {
                                      return std::make_unique<RtnQuantizer>(
                                          4, 0);
                                  }}});
    // MX-INT-4 with 128 groups.
    stages.push_back({"+ Quantize all weights to MX-INT-4_128", 9.53,
                      msqStage([](MsqConfig &c) {
                          c.inlierBits = 4;
                          c.outlierMode = OutlierMode::None;
                          c.hessianCompensation = false;
                      })});
    // MX-INT-2: the spike.
    stages.push_back({"+ Quantize all weights to MX-INT-2_128", 39.48,
                      msqStage([](MsqConfig &c) {
                          c.outlierMode = OutlierMode::None;
                          c.hessianCompensation = false;
                      })});
    // Outliers to MX-FP-4 with macro-block (coarse) sharing.
    stages.push_back({"+ Quantize outliers to MX-FP-4_128,128", 10.96,
                      msqStage([](MsqConfig &c) {
                          c.outlierMode = OutlierMode::MxFpCoarse;
                          c.prescaleOutliers = false;
                          c.pruneAndRedistribute = false;
                          c.hessianCompensation = false;
                      })});
    // Outliers to MX-FP-4 with micro-block sharing.
    stages.push_back({"+ Quantize outliers to MX-FP-4_8,8", 8.93,
                      msqStage([](MsqConfig &c) {
                          c.prescaleOutliers = false;
                          c.pruneAndRedistribute = false;
                          c.hessianCompensation = false;
                      })});
    // Outlier magnitude pre-reduction by 2^Isf.
    stages.push_back({"+ Reduce outlier mag. by 2^Isf", 8.89,
                      msqStage([](MsqConfig &c) {
                          c.pruneAndRedistribute = false;
                          c.hessianCompensation = false;
                      })});
    // Pruning of least important inliers (costs a little).
    stages.push_back({"+ Prune least imp. inliers per uB", 9.02,
                      msqStage([](MsqConfig &c) {
                          c.hessianCompensation = false;
                      })});
    // Hessian error compensation per row block (recovers it).
    stages.push_back({"+ Compensate quantization errors/rB", 8.97,
                      msqStage([](MsqConfig &) {})});
    // Activation quantization with migration alpha = 0.7.
    stages.push_back({"+ Quantize activations MX-INT-8_128, a=0.7", 9.08,
                      msqStage([](MsqConfig &) {}, 8, 0.7)});

    std::vector<SweepCell> cells;
    for (const Stage &s : stages)
        cells.push_back({&model, s.method});
    const std::vector<ModelEvalResult> results = runSweep(cells, cfg);

    for (size_t si = 0; si < stages.size(); ++si)
        add(stages[si].label, stages[si].paper, results[si].meanNmse);
    const double nmse_acts = results.back().meanNmse;

    // KV-cache quantization: model the extra reconstruction error of
    // 2-bit KV on a synthetic attention cache and fold it in.
    {
        Rng rng(404);
        Matrix keys(128, 512), values(128, 512);
        for (size_t r = 0; r < 128; ++r) {
            for (size_t c = 0; c < 512; ++c) {
                keys(r, c) = rng.gaussian(0.0, 1.0);
                values(r, c) = rng.gaussian(0.0, 1.0);
            }
        }
        KvCacheConfig kv;
        const double kv_err =
            0.5 * (quantizeKeyCache(keys, kv).normalizedErrorTo(keys) +
                   quantizeValueCache(values, kv).normalizedErrorTo(values));
        // Attention attenuates KV reconstruction error before it
        // reaches the block output (softmax smoothing + residual
        // path); the 0.1 folding factor is a documented model constant.
        add("+ 2-bit KV-cache quantization", 9.58,
            nmse_acts + 0.1 * kv_err);
    }

    t.print();
    std::puts("Shape under test: MX groups < scalar; 2-bit spike; MX-FP "
              "outliers recover it;\nmicro sharing < coarse; prune "
              "costs a little; compensation recovers; acts and\nKV add "
              "small increments.");
    return 0;
}
