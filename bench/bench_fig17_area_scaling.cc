/**
 * @file
 * Fig. 17 reproduction: total area of MicroScopiQ (1 / 2 / 8 ReCoN
 * units) versus OliVe at 8x8, 16x16 and 128x128 array sizes, with
 * buffers scaled per Section 7.9 (8x8: 16 kB iAct/oAct + 32 kB weight,
 * scaled proportionally), normalized to OliVe per size.
 */

#include <vector>

#include "accel/area.h"
#include "common/table.h"

using namespace msq;

namespace {

/** Buffer bytes scaled from the 8x8 reference configuration. */
double
bufferBytes(size_t dim)
{
    const double base = (16.0 + 16.0 + 32.0) * 1024.0;  // 8x8 reference
    const double scale = static_cast<double>(dim * dim) / (8.0 * 8.0);
    return base * scale;
}

} // namespace

int
main()
{
    std::puts("Fig. 17: area scaling (normalized to OliVe at each array "
              "size).\nPaper: single-ReCoN MicroScopiQ is smaller than "
              "OliVe everywhere; at 128x128\none ReCoN is ~3% of compute "
              "area and 8 ReCoN units add only ~11%.\n");

    for (size_t dim : {8u, 16u, 128u}) {
        const double sram = bufferBytes(dim);
        const AreaBreakdown olive = oliveArea(dim, dim, sram);
        const double olive_total = olive.totalAreaMm2();

        Table t("Array " + std::to_string(dim) + "x" +
                std::to_string(dim) + " (OliVe total " +
                Table::fmt(olive_total, 4) + " mm^2)");
        t.setHeader({"design", "compute mm^2", "total mm^2",
                     "norm. vs OliVe", "ReCoN share %"});
        for (size_t units : {1u, 2u, 8u}) {
            const AreaBreakdown ms =
                microScopiQArea(dim, dim, units, sram);
            double recon_um2 = 0.0, compute_um2 = 0.0;
            for (const AreaComponent &c : ms.components) {
                compute_um2 += c.totalUm2();
                if (c.name == "ReCoN" || c.name == "Sync buffer")
                    recon_um2 += c.totalUm2();
            }
            t.addRow({"MicroScopiQ-" + std::to_string(units) + "R",
                      Table::fmt(ms.computeAreaMm2(), 4),
                      Table::fmt(ms.totalAreaMm2(), 4),
                      Table::fmt(ms.totalAreaMm2() / olive_total, 3),
                      Table::fmt(100.0 * recon_um2 / compute_um2, 1)});
        }
        t.addRow({"OliVe", Table::fmt(olive.computeAreaMm2(), 4),
                  Table::fmt(olive_total, 4), "1.000", "-"});
        t.print();
    }
    return 0;
}
