/**
 * @file
 * Table 3 reproduction: LLaMA2-70B zero-shot benchmark accuracy at
 * W2A16 for OliVe, OmniQuant and MicroScopiQ. Proxy accuracies are
 * anchored at the paper's FP16 scores per benchmark with the
 * benchmark's chance level.
 */

#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "model/proxy_eval.h"

using namespace msq;
using namespace msq::bench;

int
main()
{
    struct Benchmark
    {
        const char *name;
        double fp;
        double chance;
        double paper_olive;
        double paper_omni;
        double paper_msq;
    };
    const std::vector<Benchmark> benchmarks = {
        {"ARC-c", 60.50, 25.0, 38.60, 49.70, 53.30},
        {"HellaSwag", 84.30, 25.0, 55.30, 77.80, 81.60},
        {"MMLU", 68.90, 25.0, 39.80, 58.20, 63.70},
        {"WinoGrande", 80.60, 50.0, 60.70, 74.20, 77.80},
    };

    const ModelProfile &model = modelByName("LLaMA2-70B");
    PipelineConfig cfg;
    cfg.calibTokens = 96;
    cfg.evalTokens = 96;

    // One quantization pass per method; the NMSE drives every
    // benchmark through its own anchor. The three passes are
    // independent, so they run as one parallel sweep.
    const std::vector<ModelEvalResult> results =
        runSweep({{&model, oliveMethod(2)},
                  {&model, omniQuantMethod(2)},
                  {&model, microScopiQMethod(2)}},
                 cfg);
    const double nmse_olive = results[0].meanNmse;
    const double nmse_omni = results[1].meanNmse;
    const double nmse_msq = results[2].meanNmse;

    Table t("Table 3: LLaMA2-70B @ W2A16 (accuracy %, paper -> measured "
            "proxy)");
    t.setHeader({"benchmark", "FP16", "OliVe", "OmniQuant",
                 "MicroScopiQ"});
    for (const Benchmark &b : benchmarks) {
        auto cell = [&](double paper, double nmse) {
            return Table::fmt(paper, 2) + " -> " +
                   Table::fmt(proxyAccuracy(b.fp, nmse, b.chance), 2);
        };
        t.addRow({b.name, Table::fmt(b.fp, 2),
                  cell(b.paper_olive, nmse_olive),
                  cell(b.paper_omni, nmse_omni),
                  cell(b.paper_msq, nmse_msq)});
    }
    t.print();
    std::printf("\nMeasured mean NMSE: OliVe %.4f, OmniQuant %.4f, "
                "MicroScopiQ %.4f\n(MicroScopiQ must be lowest: the "
                "paper reports it ahead on every benchmark).\n",
                nmse_olive, nmse_omni, nmse_msq);
    return 0;
}
