/**
 * @file
 * Fig. 12 reproduction: iso-accuracy latency and energy comparison of
 * the MicroScopiQ accelerator (v1: W4A4, v2: mostly 2-bit) against
 * GOBO, OLAccel, AdaptivFloat, ANT and OliVe on full-scale decode
 * workloads of several models. Values are normalized to OliVe as in
 * the paper's figure.
 */

#include <cmath>
#include <vector>

#include "accel/baselines.h"
#include "common/stats.h"
#include "common/table.h"
#include "model/model_zoo.h"

using namespace msq;

namespace {

/** Full-scale decode workloads: one transformer block per model times
 *  the block count (latency scales linearly). */
std::vector<Workload>
modelWorkloads(const ModelProfile &model, size_t tokens)
{
    const size_t d = model.realHidden;
    // Fraction of micro-blocks holding outliers follows the model's
    // own outlier rate (VILA's higher rate raises ReCoN traffic, the
    // power-breakdown effect of Section 7.5).
    const double micro_frac =
        1.0 - std::pow(1.0 - model.weights.outlierRate, 8.0);
    std::vector<Workload> wls;
    for (const auto &[k, o] :
         std::initializer_list<std::pair<size_t, size_t>>{
             {d, d + d / 2}, {d, d}, {d, 4 * d}, {4 * d, d}}) {
        Workload wl;
        wl.tokens = tokens;
        wl.reduction = k;
        wl.outputs = o;
        wl.microOutlierFrac = micro_frac;
        wls.push_back(wl);
    }
    return wls;
}

} // namespace

int
main()
{
    const std::vector<std::string> models = {"LLaMA2-7B", "LLaMA3-8B",
                                             "OPT-6.7B", "VILA-7B"};
    AccelConfig base;

    std::puts("Fig. 12: iso-accuracy comparison, normalized to OliVe "
              "(< 1 is better).\nPaper headline: MicroScopiQ v1 / v2 "
              "average speedups 1.50x / 2.47x over\nbaselines; v2 has "
              "the lowest energy (~1.5x lower on average).\n");

    Table lat("Fig. 12(b): normalized latency");
    Table en("Fig. 12(c): normalized energy");
    std::vector<std::string> header = {"design"};
    for (const std::string &m : models)
        header.push_back(m);
    header.push_back("geomean");
    lat.setHeader(header);
    en.setHeader(header);

    // Collect runs per design per model.
    std::vector<AccelDesign> designs = allDesigns();
    std::vector<std::vector<DesignRun>> runs(designs.size());
    for (size_t di = 0; di < designs.size(); ++di) {
        for (const std::string &mname : models) {
            const ModelProfile &model = modelByName(mname);
            Rng rng(101 + di);
            runs[di].push_back(evaluateDesign(
                designs[di], base, modelWorkloads(model, 2), rng));
        }
    }

    // Find OliVe's index for normalization.
    size_t olive_idx = 0;
    for (size_t di = 0; di < designs.size(); ++di)
        if (designs[di].name == "OliVe")
            olive_idx = di;

    for (size_t di = 0; di < designs.size(); ++di) {
        std::vector<std::string> lrow = {designs[di].name};
        std::vector<std::string> erow = {designs[di].name};
        std::vector<double> lvals, evals;
        for (size_t mi = 0; mi < models.size(); ++mi) {
            const double l =
                runs[di][mi].cycles / runs[olive_idx][mi].cycles;
            const double e =
                runs[di][mi].energyPj / runs[olive_idx][mi].energyPj;
            lvals.push_back(l);
            evals.push_back(e);
            lrow.push_back(Table::fmt(l, 2));
            erow.push_back(Table::fmt(e, 2));
        }
        lrow.push_back(Table::fmt(geomean(lvals), 2));
        erow.push_back(Table::fmt(geomean(evals), 2));
        lat.addRow(lrow);
        en.addRow(erow);
    }
    lat.print();
    en.print();
    return 0;
}
