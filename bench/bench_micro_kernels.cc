/**
 * @file
 * Google-benchmark microbenchmarks of the library's hot paths: FP
 * element encode, MX-INT / MX-FP group quantization, the full
 * MicroScopiQ layer quantizer, the PE multiplier tree, ReCoN transits,
 * the functional-accelerator GEMM, and the serving kernels. These back
 * the paper's quantization-runtime claim (Section 7.1: runtime on par
 * with GPTQ) and track the packed-execution kernel trajectory —
 * reference (scalar oracle) vs blocked integer kernel across the
 * macro-block sizes of Table 7's group-size axis — independently of
 * engine scheduling noise.
 */

#include <benchmark/benchmark.h>

#include "accel/functional.h"
#include "accel/pe.h"
#include "common/rng.h"
#include "common/simd_dispatch.h"
#include "core/microscopiq.h"
#include "mx/mx_fp.h"
#include "mx/mx_int.h"
#include "quant/gptq.h"
#include "quant/hessian.h"
#include "serve/packed_exec.h"

namespace msq {
namespace {

Matrix
randomWeights(size_t k, size_t o, uint64_t seed)
{
    Rng rng(seed);
    Matrix w(k, o);
    for (size_t r = 0; r < k; ++r) {
        for (size_t c = 0; c < o; ++c) {
            double v = rng.gaussian(0.0, 0.02);
            if (rng.bernoulli(0.02))
                v = rng.uniform(0.15, 0.4) * (rng.bernoulli(0.5) ? 1 : -1);
            w(r, c) = v;
        }
    }
    return w;
}

void
BM_FpEncode(benchmark::State &state)
{
    const FpFormat fmt = FpFormat::e1m2();
    Rng rng(1);
    std::vector<double> values(1024);
    for (double &v : values)
        v = rng.gaussian(0.0, 1.0);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(fpEncode(fmt, values[i & 1023]));
        ++i;
    }
}
BENCHMARK(BM_FpEncode);

void
BM_MxIntGroup128(benchmark::State &state)
{
    Rng rng(2);
    std::vector<double> group(128);
    for (double &v : group)
        v = rng.gaussian(0.0, 0.02);
    for (auto _ : state)
        benchmark::DoNotOptimize(mxIntQuantize(group, 2));
    state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_MxIntGroup128);

void
BM_MxFpGroup8(benchmark::State &state)
{
    Rng rng(3);
    std::vector<double> group(8);
    for (double &v : group)
        v = rng.uniform(0.5, 8.0);
    const FpFormat fmt = FpFormat::e1m2();
    for (auto _ : state)
        benchmark::DoNotOptimize(mxFpQuantize(group, fmt));
    state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_MxFpGroup8);

void
BM_PeMultiply4b(benchmark::State &state)
{
    uint8_t w = 0;
    int8_t a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            MultiPrecisionPe::multiply4b(w & 0xf, a));
        ++w;
        ++a;
    }
}
BENCHMARK(BM_PeMultiply4b);

void
BM_MicroScopiQLayer(benchmark::State &state)
{
    const size_t dim = static_cast<size_t>(state.range(0));
    const Matrix w = randomWeights(dim, dim, 4);
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    for (auto _ : state) {
        MicroScopiQQuantizer q(cfg);
        benchmark::DoNotOptimize(q.quantizePacked(w, Matrix()));
    }
    state.SetItemsProcessed(state.iterations() * dim * dim);
}
BENCHMARK(BM_MicroScopiQLayer)->Arg(128)->Arg(256);

void
BM_MicroScopiQWithHessian(benchmark::State &state)
{
    const size_t dim = 128;
    const Matrix w = randomWeights(dim, dim, 5);
    Rng rng(6);
    Matrix calib(dim, 64);
    for (size_t r = 0; r < dim; ++r)
        for (size_t t = 0; t < 64; ++t)
            calib(r, t) = rng.gaussian(0.0, 1.0);
    MsqConfig cfg;
    for (auto _ : state) {
        clearHessianCache();
        MicroScopiQQuantizer q(cfg);
        benchmark::DoNotOptimize(q.quantizePacked(w, calib));
    }
    state.SetItemsProcessed(state.iterations() * dim * dim);
}
BENCHMARK(BM_MicroScopiQWithHessian);

void
BM_GptqLayer(benchmark::State &state)
{
    const size_t dim = 128;
    const Matrix w = randomWeights(dim, dim, 7);
    Rng rng(8);
    Matrix calib(dim, 64);
    for (size_t r = 0; r < dim; ++r)
        for (size_t t = 0; t < 64; ++t)
            calib(r, t) = rng.gaussian(0.0, 1.0);
    GptqConfig cfg;
    for (auto _ : state) {
        clearHessianCache();
        GptqQuantizer q(cfg);
        benchmark::DoNotOptimize(q.quantize(w, calib));
    }
    state.SetItemsProcessed(state.iterations() * dim * dim);
}
BENCHMARK(BM_GptqLayer);

void
BM_FunctionalGemm(benchmark::State &state)
{
    const Matrix w = randomWeights(128, 256, 9);
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    MicroScopiQQuantizer q(cfg);
    const PackedLayer layer = q.quantizePacked(w, Matrix());
    Rng rng(10);
    Matrix x(128, 4);
    for (size_t r = 0; r < 128; ++r)
        for (size_t t = 0; t < 4; ++t)
            x(r, t) = rng.gaussian(0.0, 1.0);
    const QuantizedActs acts(x, 8, 128);
    FunctionalAccelerator accel{AccelConfig{}};
    for (auto _ : state)
        benchmark::DoNotOptimize(accel.gemm(layer, acts));
    state.SetItemsProcessed(state.iterations() * 128 * 256 * 4);
}
BENCHMARK(BM_FunctionalGemm);

/**
 * Serving-kernel pair: the scalar oracle (`referenceGemm`, the PR-2
 * kernel) and the blocked integer kernel on one quantized layer, swept
 * over the macro-block size (Table 7's group-size axis — the
 * macro-block is both the inlier scale-sharing group and the blocked
 * plane's column-tile grain). Items processed = integer MACs, so the
 * reported rate is directly comparable between the two.
 */
PackedLayer
servingLayer(size_t macro_block)
{
    MsqConfig cfg;
    cfg.macroBlock = macro_block;
    cfg.hessianCompensation = false;
    const Matrix w = randomWeights(256, 512, 11);
    MicroScopiQQuantizer q(cfg);
    return q.quantizePacked(w, Matrix());
}

QuantizedActs
servingActs()
{
    Rng rng(12);
    Matrix x(256, 32);
    for (size_t r = 0; r < 256; ++r)
        for (size_t t = 0; t < 32; ++t)
            x(r, t) = rng.gaussian(0.0, 1.0);
    return QuantizedActs(x, 8, 128);
}

void
BM_PackedGemmReference(benchmark::State &state)
{
    const PackedLayer layer =
        servingLayer(static_cast<size_t>(state.range(0)));
    const PackedExecPlan plan(layer);
    const QuantizedActs acts = servingActs();
    for (auto _ : state)
        benchmark::DoNotOptimize(plan.referenceGemm(acts));
    state.SetItemsProcessed(state.iterations() * plan.termCount() *
                            acts.tokens());
}
BENCHMARK(BM_PackedGemmReference)->Arg(32)->Arg(64)->Arg(128);

void
BM_PackedGemmBlocked(benchmark::State &state)
{
    const PackedLayer layer =
        servingLayer(static_cast<size_t>(state.range(0)));
    const PackedExecPlan plan(layer);
    const QuantizedActs acts = servingActs();
    for (auto _ : state)
        benchmark::DoNotOptimize(plan.gemm(acts));
    state.SetItemsProcessed(state.iterations() * plan.termCount() *
                            acts.tokens());
}
BENCHMARK(BM_PackedGemmBlocked)->Arg(32)->Arg(64)->Arg(128);

/**
 * The blocked kernel with the SIMD dispatch path forced
 * (common/simd_dispatch.h): one series per path usable on the host
 * crossed with the macro-block sizes above. Identical bytes out of
 * every series — only the instruction stream differs — so the rate
 * spread IS the hand-vectorization speedup.
 */
void
BM_PackedGemmBlockedPath(benchmark::State &state)
{
    const PackedLayer layer =
        servingLayer(static_cast<size_t>(state.range(0)));
    const PackedExecPlan plan(layer);
    const QuantizedActs acts = servingActs();
    const KernelPath path = static_cast<KernelPath>(state.range(1));
    setKernelPath(path);
    state.SetLabel(kernelPathName(path));
    for (auto _ : state)
        benchmark::DoNotOptimize(plan.gemm(acts));
    resetKernelPath();
    state.SetItemsProcessed(state.iterations() * plan.termCount() *
                            acts.tokens());
}
BENCHMARK(BM_PackedGemmBlockedPath)
    ->Apply([](benchmark::internal::Benchmark *b) {
        for (KernelPath path : usableKernelPaths())
            for (int mab : {32, 64, 128})
                b->Args({mab, static_cast<int>(path)});
    });

} // namespace
} // namespace msq

BENCHMARK_MAIN();
