/**
 * @file
 * Fig. 13 reproduction: A100 GPU versus the MicroScopiQ accelerator
 * under iso-bandwidth (2 TB/s off-chip) and iso-compute scaling:
 * normalized latency and energy for W4A4 (v1) and WxA4 (v2) decode.
 */

#include <vector>

#include "accel/baselines.h"
#include "common/table.h"
#include "gpu/gpu_model.h"
#include "model/model_zoo.h"

using namespace msq;

int
main()
{
    const std::vector<std::string> models = {"LLaMA2-7B", "LLaMA3-8B",
                                             "LLaMA2-13B"};
    const size_t tokens = 4;

    // Iso-bandwidth accelerator config: 2 TB/s off-chip, array scaled
    // toward the A100's multiplier count (55,296): 128x128 PEs at two
    // MACs per PE in 2-bit mode is 32k MACs/cycle; the remaining gap
    // is absorbed by the clock-normalized comparison.
    AccelConfig iso;
    iso.rows = 128;
    iso.cols = 128;
    iso.dramGBs = 2000.0;
    iso.ocpGBs = 1500.0;
    iso.reconUnits = 8;

    GpuConfig gpu;

    Table lat("Fig. 13(a): normalized latency (A100 = 1.0)");
    Table en("Fig. 13(b): normalized energy (A100 = 1.0)");
    lat.setHeader({"model", "MicroScopiQ v1 (paper ~0.83)",
                   "MicroScopiQ v2 (paper ~0.59)"});
    en.setHeader({"model", "MicroScopiQ v1", "MicroScopiQ v2"});

    for (const std::string &mname : models) {
        const ModelProfile &model = modelByName(mname);
        const GpuIsoResult g =
            runIsoComparison(gpu, model.paramsB, tokens);

        const size_t d = model.realHidden;
        std::vector<Workload> wls;
        for (const auto &[k, o] :
             std::initializer_list<std::pair<size_t, size_t>>{
                 {d, d + d / 2}, {d, d}, {d, 4 * d}, {4 * d, d}}) {
            Workload wl;
            wl.tokens = tokens;
            wl.reduction = k;
            wl.outputs = o;
            wl.microOutlierFrac = 0.09;
            wls.push_back(wl);
        }
        // Scale one block's cycles/energy to the full model.
        const double blocks = static_cast<double>(model.realLayers);

        Rng r1(7), r2(7);
        const DesignRun v1 =
            evaluateDesign(microScopiQV1(), iso, wls, r1);
        const DesignRun v2 =
            evaluateDesign(microScopiQV2(), iso, wls, r2);

        // GPU model covers the whole network already; normalize per
        // block for comparison.
        const double gpu_cycles = g.cycles / blocks;
        const double gpu_energy = g.energyPj / blocks;

        lat.addRow({mname, Table::fmt(v1.cycles / gpu_cycles, 2),
                    Table::fmt(v2.cycles / gpu_cycles, 2)});
        en.addRow({mname, Table::fmt(v1.energyPj / gpu_energy, 2),
                   Table::fmt(v2.energyPj / gpu_energy, 2)});
    }
    lat.print();
    en.print();
    std::puts("Paper: v1 and v2 are 1.2x and 1.7x faster than the A100 "
              "(normalized latency\n~0.83 / ~0.59) with lower energy — "
              "the GPU pays FP16 fallback and\nregister-reordering "
              "costs the accelerator architecture avoids.");
    return 0;
}
