/**
 * @file
 * Table 1 reproduction: the qualitative comparison of outlier-aware
 * technique groups, with the quantitative cells (accuracy proxy,
 * effective bit-width) measured from this repository's implementations
 * on the LLaMA3-8B profile: group A = GOBO (high precision outliers,
 * unaligned), group B = OliVe (same-precision outliers, aligned),
 * MicroScopiQ (high-precision outliers *and* aligned).
 */

#include "bench_util.h"
#include "common/table.h"
#include "quant/hessian.h"

using namespace msq;
using namespace msq::bench;

int
main()
{
    const ModelProfile &model = modelByName("LLaMA3-8B");
    PipelineConfig cfg;
    cfg.calibTokens = 96;
    cfg.evalTokens = 96;

    const ModelEvalResult gobo =
        evaluateMethodOnModel(model, goboMethod(), cfg);
    clearHessianCache();
    const ModelEvalResult olive =
        evaluateMethodOnModel(model, oliveMethod(4), cfg);
    clearHessianCache();
    const ModelEvalResult msq =
        evaluateMethodOnModel(model, microScopiQMethod(2), cfg);
    clearHessianCache();

    Table t("Table 1: MicroScopiQ vs prior outlier-aware techniques "
            "(measured on LLaMA3-8B profile)");
    t.setHeader({"property", "Group A (GOBO)", "Group B (OliVe)",
                 "MicroScopiQ"});
    t.addRow({"proxy PPL (lower better)", Table::fmt(gobo.proxyPpl, 2),
              Table::fmt(olive.proxyPpl, 2), Table::fmt(msq.proxyPpl, 2)});
    t.addRow({"accuracy verdict", "High", "Low", "High"});
    t.addRow({"effective bit-width (measured)",
              Table::fmt(gobo.meanEbw, 2) + " (paper 18.17)",
              Table::fmt(olive.meanEbw, 2) + " (paper 2-4)",
              Table::fmt(msq.meanEbw, 2) + " (paper 2.36)"});
    t.addRow({"outlier position flexibility", "Yes (sparse index)",
              "No (victim adjacency)", "Yes (Hessian pruning)"});
    t.addRow({"aligned memory", "Unaligned", "Aligned", "Aligned"});
    t.addRow({"PE design", "Complex (outlier PEs)",
              "Complex (enc/dec)", "Simple (INT + ReCoN)"});
    t.addRow({"HW overhead (Table 5)", "High (0.156 mm^2)",
              "Moderate (0.011 mm^2)", "Low (0.013 mm^2)"});
    t.print();
    std::puts("Note: GOBO's paper EBW (15.6-18.17b) counts its full "
              "unaligned sparse records;\nour measured EBW uses the "
              "component accounting in src/quant/gobo.cc.");
    return 0;
}
