/**
 * @file
 * Shared helpers for the benchmark binaries: the quantization-method
 * registry used by the Table 2/3/4/8 reproductions, and small
 * formatting utilities. Every bench prints the paper's reported value
 * next to the measured reproduction so EXPERIMENTS.md can be filled
 * from the raw output.
 */

#ifndef MSQ_BENCH_BENCH_UTIL_H
#define MSQ_BENCH_BENCH_UTIL_H

#include <memory>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "core/microscopiq.h"
#include "model/model_zoo.h"
#include "model/pipeline.h"
#include "quant/hessian.h"
#include "quant/atom_lite.h"
#include "quant/awq.h"
#include "quant/gobo.h"
#include "quant/gptq.h"
#include "quant/olive.h"
#include "quant/omniquant_lite.h"
#include "quant/rtn.h"
#include "quant/sdq_lite.h"

namespace msq::bench {

/** One (model, method) cell of a sweep grid. */
struct SweepCell
{
    const ModelProfile *model;
    QuantMethod method;
};

/**
 * Evaluate every (model, method) cell of a sweep, spreading the cells
 * over the parallelFor pool, and return the results in cell order.
 *
 * Cells are independent (evaluateMethodOnModel regenerates all data
 * from per-layer RNG streams), so the results are bit-identical to
 * evaluating the cells one by one in a serial loop — the tables the
 * benches print do not change with MSQ_THREADS. The shared Hessian
 * factorization cache is thread safe and exact (hits and misses give
 * the same factor), and is dropped when the sweep completes so
 * back-to-back sweeps in one binary start cold, as the serial benches
 * did with their per-row clearHessianCache() calls.
 */
inline std::vector<ModelEvalResult>
runSweep(const std::vector<SweepCell> &cells, const PipelineConfig &cfg)
{
    std::vector<ModelEvalResult> results(cells.size());
    try {
        parallelFor(0, cells.size(), [&](size_t i) {
            results[i] =
                evaluateMethodOnModel(*cells[i].model, cells[i].method, cfg);
        });
    } catch (...) {
        clearHessianCache();
        throw;
    }
    clearHessianCache();
    return results;
}

/** MicroScopiQ at the given inlier bit width as a pipeline method. */
inline QuantMethod
microScopiQMethod(unsigned bits, unsigned act_bits = 0,
                  double alpha = 0.0)
{
    QuantMethod m;
    m.name = "MicroScopiQ";
    m.makeQuantizer = [bits] {
        MsqConfig c;
        c.inlierBits = bits;
        return std::make_unique<MicroScopiQQuantizer>(c);
    };
    m.actBits = act_bits;
    m.migrationAlpha = alpha;
    return m;
}

inline QuantMethod
gptqMethod(unsigned bits)
{
    QuantMethod m;
    m.name = "GPTQ";
    m.makeQuantizer = [bits] {
        GptqConfig c;
        c.bits = bits;
        return std::make_unique<GptqQuantizer>(c);
    };
    return m;
}

inline QuantMethod
awqMethod(unsigned bits)
{
    QuantMethod m;
    m.name = "AWQ";
    m.makeQuantizer = [bits] {
        return std::make_unique<AwqQuantizer>(bits);
    };
    return m;
}

inline QuantMethod
oliveMethod(unsigned bits, unsigned act_bits = 0)
{
    QuantMethod m;
    m.name = "OliVe";
    m.makeQuantizer = [bits] {
        return std::make_unique<OliveQuantizer>(bits);
    };
    m.actBits = act_bits;
    return m;
}

inline QuantMethod
goboMethod(unsigned act_bits = 0)
{
    QuantMethod m;
    m.name = "GOBO";
    m.makeQuantizer = [] { return std::make_unique<GoboQuantizer>(3); };
    m.actBits = act_bits;
    return m;
}

inline QuantMethod
omniQuantMethod(unsigned bits, unsigned act_bits = 0, bool let = false)
{
    QuantMethod m;
    m.name = "OmniQuant";
    m.makeQuantizer = [bits, let] {
        return std::make_unique<OmniQuantLite>(bits, 128, let);
    };
    m.actBits = act_bits;
    // OmniQuant's LET learns a migration; modeled as alpha = 0.5.
    m.migrationAlpha = let ? 0.5 : 0.0;
    return m;
}

inline QuantMethod
smoothQuantMethod(unsigned bits, unsigned act_bits)
{
    QuantMethod m;
    m.name = "SmoothQuant";
    // Migration is applied by the pipeline (alpha = 0.5, the paper's
    // limit for SmoothQuant); the weight side is plain group RTN.
    m.makeQuantizer = [bits] {
        return std::make_unique<RtnQuantizer>(bits, 128);
    };
    m.actBits = act_bits;
    m.migrationAlpha = 0.5;
    return m;
}

inline QuantMethod
atomMethod(unsigned bits, unsigned act_bits)
{
    QuantMethod m;
    m.name = "Atom";
    m.makeQuantizer = [bits] {
        return std::make_unique<AtomLite>(bits, 128, 10);
    };
    m.actBits = act_bits;
    return m;
}

inline QuantMethod
sdqMethod(unsigned bits)
{
    QuantMethod m;
    m.name = "SDQ";
    m.makeQuantizer = [bits] {
        return std::make_unique<SdqLite>(bits, 1, 8, 128);
    };
    return m;
}

/** MicroScopiQ with migration for weight-activation settings
 *  (alpha = 0.7, Section 7.2). */
inline QuantMethod
microScopiQWaMethod(unsigned bits, unsigned act_bits)
{
    return microScopiQMethod(bits, act_bits, 0.7);
}

} // namespace msq::bench

#endif // MSQ_BENCH_BENCH_UTIL_H
