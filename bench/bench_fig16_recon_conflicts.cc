/**
 * @file
 * Fig. 16(b) reproduction: percentage of ReCoN accesses that conflict
 * on a 64x64 array as the number of ReCoN units grows, on a
 * LLaMA3-8B-scale decode workload.
 */

#include <vector>

#include "accel/cycle_model.h"
#include "common/table.h"
#include "model/model_zoo.h"

using namespace msq;

int
main()
{
    const ModelProfile &model = modelByName("LLaMA3-8B");
    const size_t d = model.realHidden;

    std::vector<Workload> wls;
    for (const auto &[k, o] :
         std::initializer_list<std::pair<size_t, size_t>>{
             {d, d + d / 2}, {d, d}, {d, 4 * d}, {4 * d, d}}) {
        Workload wl;
        wl.tokens = 2;
        wl.reduction = k;
        wl.outputs = o;
        wl.microOutlierFrac = 0.09;
        wls.push_back(wl);
    }

    Table t("Fig. 16(b): ReCoN access conflicts, 64x64 array "
            "(paper: <3% at 1 unit, ->0 with more)");
    t.setHeader({"ReCoN units", "accesses", "conflicts", "conflict %",
                 "stall cycles"});
    for (size_t units : {1u, 2u, 4u, 8u}) {
        AccelConfig cfg;
        cfg.reconUnits = units;
        CycleModel cm(cfg);
        Rng rng(3);
        const CycleStats s = cm.runAll(wls, rng);
        t.addRow({std::to_string(units),
                  Table::fmtInt(static_cast<long long>(s.reconAccesses)),
                  Table::fmtInt(static_cast<long long>(s.reconConflicts)),
                  Table::fmt(100.0 * s.conflictRate(), 2),
                  Table::fmtInt(
                      static_cast<long long>(s.reconStallCycles))});
    }
    t.print();
    std::puts("Modeling note (docs/DESIGN.md): conflicts are measured with "
              "wavefront emission\n(row+token staggering) and "
              "column-slot arbitration; decode workloads sit in\nthe "
              "paper's low-contention regime.");
    return 0;
}
