/**
 * @file
 * Serving-frontend benchmark: drives the TCP ModelServer over loopback
 * through four phases and emits both a human-readable table and a
 * machine-readable BENCH_net.json (path overridable as argv[1]; model
 * as argv[2] — CI runs a TinyLM-decode smoke pass; schema checked by
 * scripts/check_bench_json.py).
 *
 *  stream    N concurrent fault-free clients, R requests each: p50/
 *            p95/p99 first-token and per-token latency plus end-to-end
 *            streamed-token throughput. Every stream is checked
 *            byte-identical to a direct single-request engine run —
 *            the network boundary may add latency, never entropy.
 *  overload  a pipelined burst against a one-deep admission queue:
 *            counts typed OVERLOADED rejections (the backpressure path
 *            must engage; silent queueing would be the regression).
 *  drain     in-flight streams + SIGTERM-style graceful drain: drain
 *            wall time and the dropped-token count, which must be 0.
 *  chaos     seeded fault-injecting clients across a hard server kill
 *            and restart on the same port: every eventually-completed
 *            stream must fold-match the fault-free reference
 *            (checksum_match gates in CI).
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "model/model_zoo.h"
#include "net/client.h"
#include "net/fault.h"
#include "net/frame.h"
#include "net/server.h"
#include "serve/clock.h"
#include "serve/decode.h"

using namespace msq;

namespace {

constexpr size_t kClients = 4;
constexpr size_t kRequestsPerClient = 4;
constexpr size_t kMaxNew = 16;

DecodeConfig
benchDecodeConfig()
{
    DecodeConfig cfg;
    cfg.maxBatchSeqs = 8;
    cfg.stepTokenBudget = 32;
    cfg.prefillChunk = 8;
    cfg.kv = {2, 8, 8};
    cfg.vocab = 64;
    return cfg;
}

std::vector<uint32_t>
makePrompt(uint64_t seed, size_t len)
{
    Rng rng(seed);
    std::vector<uint32_t> prompt(len);
    for (uint32_t &tok : prompt)
        tok = static_cast<uint32_t>(rng.uniformInt(64));
    return prompt;
}

uint64_t
promptSeed(size_t client, size_t request)
{
    return 3000 + client * 100 + request;
}

size_t
promptLen(size_t client, size_t request)
{
    return 4 + (client + request) % 5;
}

/** Fault-free reference stream from a private engine. */
std::vector<uint32_t>
referenceStream(const ModelProfile &model, const MsqConfig &qcfg,
                size_t client, size_t request)
{
    DecodeEngine ref(model, qcfg, benchDecodeConfig());
    ref.submit(makePrompt(promptSeed(client, request),
                          promptLen(client, request)),
               kMaxNew);
    const DecodeReport rep = ref.run();
    return rep.requests.front().tokens;
}

struct LatencyRecord
{
    std::vector<double> firstToken;
    std::vector<double> perToken;
};

void
addLatencyRows(Table &t, const char *what, const std::vector<double> &v)
{
    t.addRow({"", std::string(what) + " p50 (ms)",
              Table::fmt(percentile(v, 50.0), 3)});
    t.addRow({"", std::string(what) + " p95 (ms)",
              Table::fmt(percentile(v, 95.0), 3)});
    t.addRow({"", std::string(what) + " p99 (ms)",
              Table::fmt(percentile(v, 99.0), 3)});
}

void
writeLatencyJson(std::FILE *f, const char *name,
                 const std::vector<double> &v, bool trailing_comma)
{
    const SampleSummary s = summarize(v);
    std::fprintf(f,
                 "  \"%s\": {\"p50\": %.4f, \"p95\": %.4f, "
                 "\"p99\": %.4f, \"mean\": %.4f, \"max\": %.4f}%s\n",
                 name, percentile(v, 50.0), percentile(v, 95.0),
                 percentile(v, 99.0), s.mean, s.maxValue,
                 trailing_comma ? "," : "");
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path = argc > 1 ? argv[1] : "BENCH_net.json";
    const std::string model_name =
        argc > 2 ? argv[2] : "TinyLM-decode";
    const ModelProfile &model = modelByName(model_name);
    if (!decodeCapable(model)) {
        std::fprintf(stderr, "%s carries no attention geometry\n",
                     model.name.c_str());
        return 1;
    }
    MsqConfig qcfg;
    qcfg.hessianCompensation = false;

    // Fault-free per-request references (also warms the packed cache
    // outside every timed region).
    std::vector<std::vector<std::vector<uint32_t>>> want(kClients);
    for (size_t c = 0; c < kClients; ++c)
        for (size_t r = 0; r < kRequestsPerClient; ++r)
            want[c].push_back(referenceStream(model, qcfg, c, r));

    // ---- stream phase: latency + throughput + byte identity --------
    DecodeEngine engine(model, qcfg, benchDecodeConfig());
    ServerConfig scfg;
    scfg.ioWorkers = 2;
    scfg.maxQueue = 32;
    ModelServer server(engine, scfg);
    if (!server.start()) {
        std::fprintf(stderr, "cannot bind a loopback port\n");
        return 1;
    }
    const uint16_t port = server.boundPort();

    LatencyRecord lat;
    std::vector<LatencyRecord> perClient(kClients);
    size_t mismatches = 0;
    std::vector<size_t> clientMismatches(kClients, 0);
    const uint64_t wall0 = steadyNanos();
    std::vector<std::thread> streamThreads;
    for (size_t c = 0; c < kClients; ++c)
        streamThreads.emplace_back([&, c] {
            ClientConfig cc;
            cc.port = port;
            cc.seed = 10 + c;
            NetClient client(cc);
            for (size_t r = 0; r < kRequestsPerClient; ++r) {
                const GenerateResult res = client.generate(
                    makePrompt(promptSeed(c, r), promptLen(c, r)),
                    kMaxNew);
                if (res.code != NetCode::Ok || res.tokens != want[c][r]) {
                    ++clientMismatches[c];
                    continue;
                }
                perClient[c].firstToken.push_back(res.firstTokenMs);
                if (res.tokens.size() > 1)
                    perClient[c].perToken.push_back(
                        (res.totalMs - res.firstTokenMs) /
                        static_cast<double>(res.tokens.size() - 1));
            }
        });
    for (std::thread &t : streamThreads)
        t.join();
    const double stream_wall_ms = elapsedMs(wall0);
    for (size_t c = 0; c < kClients; ++c) {
        mismatches += clientMismatches[c];
        lat.firstToken.insert(lat.firstToken.end(),
                              perClient[c].firstToken.begin(),
                              perClient[c].firstToken.end());
        lat.perToken.insert(lat.perToken.end(),
                            perClient[c].perToken.begin(),
                            perClient[c].perToken.end());
    }
    const uint64_t streamed = server.stats().tokensStreamed;
    const double tokens_per_s =
        stream_wall_ms > 0.0
            ? static_cast<double>(streamed) / (stream_wall_ms / 1e3)
            : 0.0;

    // ---- drain phase: in-flight streams survive a graceful stop ----
    std::vector<std::thread> drainThreads;
    for (size_t c = 0; c < 2; ++c)
        drainThreads.emplace_back([&, c] {
            ClientConfig cc;
            cc.port = port;
            cc.seed = 20 + c;
            NetClient client(cc);
            client.generate(makePrompt(promptSeed(c, 0), promptLen(c, 0)),
                            kMaxNew);
        });
    // Let the requests reach the engine before pulling the plug
    // (bounded: a rejected drain request must not hang the bench).
    for (int spins = 0; spins < 5000 &&
                        server.stats().requestsAdmitted <
                            kClients * kRequestsPerClient + 2;
         ++spins)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const bool drained = server.drain();
    for (std::thread &t : drainThreads)
        t.join();
    const ServerStats drainStats = server.stats();

    // ---- overload phase: typed backpressure on a one-deep queue ----
    DecodeConfig slowCfg = benchDecodeConfig();
    slowCfg.maxBatchSeqs = 1;
    DecodeEngine slowEngine(model, qcfg, slowCfg);
    ServerConfig oCfg;
    oCfg.maxQueue = 1;
    ModelServer oServer(slowEngine, oCfg);
    if (!oServer.start()) {
        std::fprintf(stderr, "cannot bind the overload-phase port\n");
        return 1;
    }
    constexpr size_t kBurst = 12;
    {
        std::vector<std::thread> burst;
        for (size_t i = 0; i < kBurst; ++i)
            burst.emplace_back([&, i] {
                ClientConfig cc;
                cc.port = oServer.boundPort();
                cc.seed = 30 + i;
                cc.maxAttempts = 1;  // count rejections, don't retry
                NetClient client(cc);
                client.generate(makePrompt(promptSeed(i, 1),
                                           promptLen(i, 1)),
                                kMaxNew);
            });
        for (std::thread &t : burst)
            t.join();
    }
    const ServerStats oStats = oServer.stats();
    oServer.stop();

    // ---- chaos phase: faulted clients across a kill + restart ------
    DecodeEngine chaosEngine(model, qcfg, benchDecodeConfig());
    auto chaosServer =
        std::make_unique<ModelServer>(chaosEngine, ServerConfig{});
    size_t chaosCompleted = 0, chaosMatched = 0;
    uint64_t chaosFaults = 0;
    uint16_t chaosPort = 0;
    ServerStats chaosStats;
    {
        if (!chaosServer->start()) {
            std::fprintf(stderr, "cannot bind the chaos-phase port\n");
            return 1;
        }
        chaosPort = chaosServer->boundPort();
        std::vector<std::thread> threads;
        std::vector<size_t> completed(kClients, 0), matched(kClients, 0);
        std::vector<uint64_t> faults(kClients, 0);
        for (size_t c = 0; c < kClients; ++c)
            threads.emplace_back([&, c] {
                FaultConfig fc;
                fc.seed = 9000 + c;
                fc.connectFailProb = 0.05;
                fc.sendSeverProb = 0.10;
                fc.sendTruncateProb = 0.10;
                fc.recvSeverProb = 0.01;
                fc.delayProb = 0.05;
                fc.maxDelayMs = 2;
                FaultInjector injector(fc);
                ClientConfig cc;
                cc.port = chaosPort;
                cc.seed = 40 + c;
                cc.maxAttempts = 12;
                cc.backoffBaseMs = 5;
                cc.backoffCapMs = 80;
                NetClient client(cc, &injector);
                for (size_t r = 0; r < kRequestsPerClient; ++r) {
                    const GenerateResult res = client.generate(
                        makePrompt(promptSeed(c, r), promptLen(c, r)),
                        kMaxNew);
                    if (res.code != NetCode::Ok)
                        continue;
                    ++completed[c];
                    if (res.tokens == want[c][r] &&
                        res.streamFold ==
                            tokenStreamFold(want[c][r].data(),
                                            want[c][r].size()))
                        ++matched[c];
                }
                faults[c] = injector.faults();
            });
        // Hard-kill mid-load, restart on the same port.
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        chaosServer->stop();
        chaosServer.reset();
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        ServerConfig rCfg;
        rCfg.port = chaosPort;
        chaosServer = std::make_unique<ModelServer>(chaosEngine, rCfg);
        if (!chaosServer->start()) {
            std::fprintf(stderr, "cannot rebind the chaos port\n");
            return 1;
        }
        for (std::thread &t : threads)
            t.join();
        for (size_t c = 0; c < kClients; ++c) {
            chaosCompleted += completed[c];
            chaosMatched += matched[c];
            chaosFaults += faults[c];
        }
        const bool chaosDrained = chaosServer->drain();
        chaosStats = chaosServer->stats();
        if (!chaosDrained)
            chaosStats.droppedTokens += 1;  // force the CI gate red
        chaosServer.reset();
    }
    const bool checksum_match =
        chaosCompleted >= 1 && chaosMatched == chaosCompleted;

    // ---- report ----------------------------------------------------
    Table t("Network serving frontend, " + model.name + ", " +
            qcfg.name() + " (" + std::to_string(threadCount()) +
            " threads, " + std::to_string(scfg.ioWorkers) +
            " io workers)");
    t.setHeader({"phase", "quantity", "value"});
    t.addRow({"stream", "clients x requests",
              Table::fmtInt(static_cast<long long>(kClients)) + " x " +
                  Table::fmtInt(
                      static_cast<long long>(kRequestsPerClient))});
    t.addRow({"", "tokens streamed",
              Table::fmtInt(static_cast<long long>(streamed))});
    t.addRow({"", "throughput (tok/s)", Table::fmt(tokens_per_s, 1)});
    t.addRow({"", "stream mismatches",
              Table::fmtInt(static_cast<long long>(mismatches))});
    addLatencyRows(t, "first-token", lat.firstToken);
    addLatencyRows(t, "per-token", lat.perToken);
    t.addSeparator();
    t.addRow({"overload", "burst / queue depth",
              Table::fmtInt(static_cast<long long>(kBurst)) + " / " +
                  Table::fmtInt(static_cast<long long>(oCfg.maxQueue))});
    t.addRow({"", "served",
              Table::fmtInt(
                  static_cast<long long>(oStats.requestsServed))});
    t.addRow({"", "rejected OVERLOADED",
              Table::fmtInt(
                  static_cast<long long>(oStats.rejectedOverloaded))});
    t.addSeparator();
    t.addRow({"drain", "drain wall (ms)",
              Table::fmt(drainStats.drainMs, 2)});
    t.addRow({"", "dropped tokens",
              Table::fmtInt(
                  static_cast<long long>(drainStats.droppedTokens))});
    t.addRow({"", "drained cleanly", drained ? "yes" : "NO"});
    t.addSeparator();
    t.addRow({"chaos", "completed / attempted",
              Table::fmtInt(static_cast<long long>(chaosCompleted)) +
                  " / " +
                  Table::fmtInt(static_cast<long long>(
                      kClients * kRequestsPerClient))});
    t.addRow({"", "injected faults",
              Table::fmtInt(static_cast<long long>(chaosFaults))});
    t.addRow({"", "streams byte-identical",
              checksum_match ? "yes" : "NO"});
    t.print();

    std::FILE *f = std::fopen(json_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"net\",\n"
                 "  \"model\": \"%s\",\n"
                 "  \"method\": \"%s\",\n"
                 "  \"threads\": %u,\n"
                 "  \"io_workers\": %zu,\n"
                 "  \"clients\": %zu,\n"
                 "  \"requests\": %zu,\n"
                 "  \"max_new_tokens\": %zu,\n"
                 "  \"tokens_streamed\": %llu,\n"
                 "  \"tokens_per_s\": %.2f,\n"
                 "  \"wall_ms\": %.3f,\n"
                 "  \"stream_mismatches\": %zu,\n",
                 model.name.c_str(), qcfg.name().c_str(), threadCount(),
                 scfg.ioWorkers, kClients, kRequestsPerClient, kMaxNew,
                 static_cast<unsigned long long>(streamed), tokens_per_s,
                 stream_wall_ms, mismatches);
    writeLatencyJson(f, "first_token_ms", lat.firstToken, true);
    writeLatencyJson(f, "per_token_ms", lat.perToken, true);
    std::fprintf(f,
                 "  \"overload\": {\"burst\": %zu, \"queue_limit\": %zu, "
                 "\"served\": %llu, \"rejected_overloaded\": %llu},\n",
                 kBurst, oCfg.maxQueue,
                 static_cast<unsigned long long>(oStats.requestsServed),
                 static_cast<unsigned long long>(
                     oStats.rejectedOverloaded));
    std::fprintf(
        f,
        "  \"drain\": {\"drain_ms\": %.3f, \"dropped_tokens\": %llu, "
        "\"requests_served\": %llu},\n",
        drainStats.drainMs,
        static_cast<unsigned long long>(drainStats.droppedTokens),
        static_cast<unsigned long long>(drainStats.requestsServed));
    std::fprintf(
        f,
        "  \"chaos\": {\"clients\": %zu, \"requests\": %zu, "
        "\"completed\": %zu, \"matched\": %zu, \"faults\": %llu, "
        "\"checksum_match\": %s, \"dropped_tokens\": %llu}\n"
        "}\n",
        kClients, kClients * kRequestsPerClient, chaosCompleted,
        chaosMatched, static_cast<unsigned long long>(chaosFaults),
        checksum_match ? "true" : "false",
        static_cast<unsigned long long>(chaosStats.droppedTokens));
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
    return mismatches == 0 && checksum_match ? 0 : 1;
}
