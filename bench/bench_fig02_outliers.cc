/**
 * @file
 * Fig. 2 reproduction.
 *
 * (a) Layer-wise outlier and adjacent-outlier distribution across
 *     model families (box-plot statistics: min / median / max per
 *     model over its layers).
 * (b) Zero-shot benchmark accuracy: FP baseline vs OliVe-W4A16 vs
 *     MicroScopiQ-W2A16 on the paper's five benchmark/model pairs.
 */

#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/outlier.h"
#include "model/calib_gen.h"
#include "model/model_zoo.h"
#include "model/proxy_eval.h"
#include "model/weight_gen.h"
#include "quant/hessian.h"

using namespace msq;
using namespace msq::bench;

namespace {

void
figure2a()
{
    Table t("Fig. 2(a): outlier / adjacent-outlier distribution "
            "(% of layer weights; min-median-max over layers)");
    t.setHeader({"model", "outliers %", "adjacent %"});
    const std::vector<std::string> names = {
        "OPT-6.7B",    "LLaMA2-13B", "LLaMA3-8B",
        "VILA-7B",     "LLaVA1.5-7B", "VMamba-S"};
    for (const std::string &name : names) {
        const ModelProfile &model = modelByName(name);
        std::vector<double> out_frac, adj_frac;
        for (size_t li = 0; li < model.layers.size(); ++li) {
            const Matrix w = generateLayerWeights(model, li);
            const OutlierStats s = analyzeOutliers(w, 128);
            out_frac.push_back(100.0 * s.outlierFraction());
            adj_frac.push_back(100.0 * s.adjacentFraction());
        }
        auto span = [](std::vector<double> v) {
            return Table::fmt(percentile(v, 0), 3) + " / " +
                   Table::fmt(percentile(v, 50), 3) + " / " +
                   Table::fmt(percentile(v, 100), 3);
        };
        t.addRow({name, span(out_frac), span(adj_frac)});
    }
    t.print();
    std::puts("Paper: outliers peak ~5.1%; modern FMs average >0.5% "
              "adjacent outliers (OPT ~0.04%, two orders lower).\n");
}

void
figure2b()
{
    // The five benchmark/model pairs of Fig. 2(b) with FP baselines.
    struct Entry
    {
        const char *benchmark;
        const char *model;
        double fp;
        double paper_olive;
        double paper_msq;
    };
    const std::vector<Entry> entries = {
        {"PIQA", "LLaMA3-8B", 74.53, 62.34, 67.39},
        {"BoolQ", "LLaMA2-13B", 74.17, 58.10, 67.30},
        {"HellaSwag", "VILA-7B", 80.75, 56.42, 72.59},
        {"GQA", "LLaVA1.5-7B", 62.30, 48.26, 57.92},
        {"VQAv2", "OpenFlamingo-9B", 78.50, 49.21, 72.68},
    };

    Table t("Fig. 2(b): accuracy, OliVe-W4A16 vs MicroScopiQ-W2A16 "
            "(paper -> measured proxy)");
    t.setHeader({"benchmark (model)", "FP", "OliVe-W4 paper",
                 "OliVe-W4 ours", "MSQ-W2 paper", "MSQ-W2 ours"});
    PipelineConfig cfg;
    cfg.calibTokens = 96;
    cfg.evalTokens = 96;
    for (const Entry &e : entries) {
        ModelProfile model = modelByName(e.model);
        model.fpMetric = e.fp;  // anchor at this benchmark's FP score
        const double olive_nmse =
            evaluateMethodOnModel(model, oliveMethod(4), cfg).meanNmse;
        const double msq_nmse =
            evaluateMethodOnModel(model, microScopiQMethod(2), cfg)
                .meanNmse;
        t.addRow({std::string(e.benchmark) + " (" + e.model + ")",
                  Table::fmt(e.fp, 2), Table::fmt(e.paper_olive, 2),
                  Table::fmt(proxyAccuracy(e.fp, olive_nmse), 2),
                  Table::fmt(e.paper_msq, 2),
                  Table::fmt(proxyAccuracy(e.fp, msq_nmse), 2)});
        clearHessianCache();
    }
    t.print();
    std::puts("Claim under test: 2-bit MicroScopiQ beats 4-bit OliVe on "
              "every benchmark\n(OliVe's victim pruning destroys "
              "adjacent outliers).\n");
}

} // namespace

int
main()
{
    figure2a();
    figure2b();
    return 0;
}
