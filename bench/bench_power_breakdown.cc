/**
 * @file
 * Section 7.5 reproduction: accelerator power breakdown. Paper: for
 * LLaMA2-7B the PE array consumes 56.23% of power, on-chip memory
 * 36.80%, ReCoN 5.94%; VILA-7B (higher outlier rate) shifts to
 * 55.98% / 35.32% / 7.65%.
 *
 * Configuration: batched decode (batch 64) on a 64x64 array with 8
 * ReCoN units (the zero-conflict configuration of Section 7.8), DRAM
 * excluded (off-package), static power attributed to components by
 * their area share (SRAM dominates die area, the PE array dominates
 * dynamic power).
 */

#include <cmath>

#include "accel/area.h"
#include "accel/block_sim.h"
#include "common/table.h"

using namespace msq;

int
main()
{
    Table t("Section 7.5: on-chip power breakdown "
            "(paper -> measured)");
    t.setHeader({"model", "PE array %", "on-chip memory %", "ReCoN %"});

    struct Entry
    {
        const char *model;
        double paperPe, paperMem, paperRecon;
    };
    for (const Entry &e :
         {Entry{"LLaMA2-7B", 56.23, 36.80, 5.94},
          Entry{"VILA-7B", 55.98, 35.32, 7.65}}) {
        const ModelProfile &model = modelByName(e.model);
        AccelConfig cfg;
        cfg.reconUnits = 8;
        DecodeStep step;
        step.batch = 64;
        step.microOutlierFrac =
            1.0 - std::pow(1.0 - model.weights.outlierRate, 8.0);
        Rng rng(21);
        const BlockSimResult res = simulateDecode(cfg, model, step, rng);

        // Static power split by component area share.
        const AreaBreakdown area = microScopiQArea(
            64, 64, cfg.reconUnits, static_cast<double>(cfg.l2Bytes));
        double recon_um2 = 0.0, compute_um2 = 0.0;
        for (const AreaComponent &c : area.components) {
            compute_um2 += c.totalUm2();
            if (c.name == "ReCoN" || c.name == "Sync buffer")
                recon_um2 += c.totalUm2();
        }
        const double total_mm2 = area.totalAreaMm2();
        const double pe_share =
            (compute_um2 - recon_um2) / 1e6 / total_mm2;
        const double recon_share = recon_um2 / 1e6 / total_mm2;
        const double mem_share = area.sramAreaMm2() / total_mm2;

        const double st = res.energy.staticEnergy;
        const double pe = res.energy.peDynamic + st * pe_share;
        const double mem = res.energy.bufferDynamic +
                           res.energy.l2Dynamic + st * mem_share;
        const double recon =
            res.energy.reconDynamic + st * recon_share;
        const double onchip = pe + mem + recon;
        t.addRow({e.model,
                  Table::fmt(e.paperPe, 2) + " -> " +
                      Table::fmt(100.0 * pe / onchip, 2),
                  Table::fmt(e.paperMem, 2) + " -> " +
                      Table::fmt(100.0 * mem / onchip, 2),
                  Table::fmt(e.paperRecon, 2) + " -> " +
                      Table::fmt(100.0 * recon / onchip, 2)});
    }
    t.print();
    std::puts("Shape under test: the PE array dominates; ReCoN stays a "
              "small single-digit\nshare and grows with the model's "
              "outlier rate (VILA > LLaMA2).");
    return 0;
}
