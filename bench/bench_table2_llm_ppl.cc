/**
 * @file
 * Table 2 reproduction: WikiText-2 perplexity (proxy) for the ten LLM
 * profiles under four quantization settings (W4A16, W4A4, W2A16,
 * W2A8), with the method roster of the paper's table. Paper values are
 * printed alongside so the shape of the comparison — who wins, by how
 * much — is auditable directly from the output.
 */

#include <map>
#include <vector>

#include "bench_util.h"
#include "common/table.h"

using namespace msq;
using namespace msq::bench;

namespace {

struct Setting
{
    std::string name;
    std::vector<QuantMethod> methods;
    // Paper PPL rows keyed by method then model (Table 2 order).
    std::map<std::string, std::vector<double>> paper;
};

constexpr double kNan = -1.0;

std::string
fmtPpl(double v)
{
    return v < 0 ? std::string("-") : Table::fmt(v, 2);
}

} // namespace

int
main()
{
    const std::vector<std::string> models = table2Models();
    PipelineConfig cfg;
    cfg.calibTokens = 96;
    cfg.evalTokens = 96;

    std::vector<Setting> settings;

    {
        Setting s;
        s.name = "W4A16";
        s.methods = {oliveMethod(4), goboMethod(), gptqMethod(4),
                     awqMethod(4), omniQuantMethod(4),
                     microScopiQMethod(4)};
        s.paper["OliVe"] = {12.20, 9.09, 11.52, 9.34, 7.23,
                            10.29, 5.65, 6.19, 8.57, 7.81};
        s.paper["GOBO"] = {10.97, 8.71, 5.79, 5.03, 3.45,
                           7.11, 3.53, 4.22, 6.64, 4.78};
        s.paper["GPTQ"] = {11.12, 9.09, 6.23, 5.58, 4.28,
                           8.12, 3.75, 4.68, 7.17, 5.13};
        s.paper["AWQ"] = {10.97, 8.74, 5.82, 5.19, 4.08,
                          7.96, 3.58, 4.36, 6.72, 4.99};
        s.paper["OmniQuant"] = {10.96, 8.72, 5.74, 5.02, 3.47,
                                7.09, 3.46, 4.19, 6.67, 4.82};
        s.paper["MicroScopiQ"] = {10.91, 8.62, 5.65, 5.02, 3.42,
                                  6.89, 3.25, 4.07, 6.61, 4.70};
        settings.push_back(std::move(s));
    }
    {
        Setting s;
        s.name = "W4A4";
        s.methods = {oliveMethod(4, 4), omniQuantMethod(4, 4, true),
                     smoothQuantMethod(4, 4), atomMethod(4, 4),
                     microScopiQWaMethod(4, 4)};
        s.paper["OliVe"] = {55.44, 14.17, 19.28, 14.96, 13.59,
                            27.65, 9.34, 23.53, 17.63, 15.29};
        s.paper["OmniQuant"] = {11.61, 9.88, 11.47, 8.32, 5.41,
                                10.21, 5.30, 5.98, 8.21, 6.40};
        s.paper["SmoothQuant"] = {19.54, 17.62, 20.47, 15.63, 17.62,
                                  29.54, 19.32, 37.54, 18.11, 15.39};
        s.paper["Atom"] = {11.15, 9.02, 6.16, 6.12, 5.20,
                           8.12, 4.69, 5.35, 7.59, 5.95};
        s.paper["MicroScopiQ"] = {10.97, 8.95, 6.11, 5.57, 4.48,
                                  8.12, 4.65, 5.03, 6.95, 5.41};
        settings.push_back(std::move(s));
    }
    {
        Setting s;
        s.name = "W2A16";
        s.methods = {omniQuantMethod(2), sdqMethod(2),
                     microScopiQMethod(2)};
        s.paper["OmniQuant"] = {11.61, 9.66, 9.62, 7.56, 6.11,
                                9.13, 6.17, 6.02, 7.09, 6.28};
        s.paper["SDQ"] = {12.09, 10.04, 10.47, 8.09, 6.98,
                          10.54, 6.93, 7.62, 7.39, 6.92};
        s.paper["MicroScopiQ"] = {11.51, 9.42, 8.43, 7.06, 6.01,
                                  8.97, 5.91, 6.02, 7.16, 6.03};
        settings.push_back(std::move(s));
    }
    {
        Setting s;
        s.name = "W2A8";
        s.methods = {omniQuantMethod(2, 8, true), atomMethod(2, 8),
                     microScopiQWaMethod(2, 8)};
        s.paper["OmniQuant"] = {11.99, 10.23, 9.62, 8.92, 6.83,
                                9.39, 6.59, 6.29, 7.95, 7.37};
        s.paper["Atom"] = {11.95, 10.13, 9.23, 8.54, 6.33,
                           9.13, 6.35, 6.14, 7.46, 7.29};
        s.paper["MicroScopiQ"] = {11.77, 9.98, 9.06, 8.06, 6.33,
                                  9.08, 6.02, 6.17, 7.38, 6.82};
        settings.push_back(std::move(s));
    }

    std::puts("Table 2: WikiText-2 perplexity (lower is better).");
    std::puts("Each cell: paper value -> measured proxy value.\n");

    for (const Setting &setting : settings) {
        Table t("Setting " + setting.name);
        std::vector<std::string> header = {"method"};
        for (const std::string &m : models)
            header.push_back(m);
        t.setHeader(header);

        // FP baseline row.
        std::vector<std::string> fp_row = {"Baseline (FP16)"};
        for (const std::string &m : models)
            fp_row.push_back(Table::fmt(modelByName(m).fpMetric, 2));
        t.addRow(fp_row);
        t.addSeparator();

        // The whole method x model grid of this setting is one
        // parallel sweep; results come back in row-major cell order.
        std::vector<SweepCell> cells;
        for (const QuantMethod &method : setting.methods)
            for (const std::string &m : models)
                cells.push_back({&modelByName(m), method});
        const std::vector<ModelEvalResult> results = runSweep(cells, cfg);

        for (size_t qi = 0; qi < setting.methods.size(); ++qi) {
            const QuantMethod &method = setting.methods[qi];
            std::vector<std::string> row = {method.name};
            const auto paper_it = setting.paper.find(method.name);
            for (size_t mi = 0; mi < models.size(); ++mi) {
                const ModelEvalResult &res =
                    results[qi * models.size() + mi];
                const double paper =
                    paper_it != setting.paper.end()
                        ? paper_it->second[mi]
                        : kNan;
                row.push_back(fmtPpl(paper) + " -> " +
                              Table::fmt(res.proxyPpl, 2));
            }
            t.addRow(row);
        }
        t.print();
    }
    return 0;
}
