/**
 * @file
 * Fig. 10 reproduction: weight-only quantization of VLMs across
 * in-context shot counts. OpenFlamingo-9B on COCO captioning and
 * VILA-7B on VizWiz / TextVQA: the FP accuracy rises with shots (the
 * in-context learning curve), and each quantization method shifts the
 * whole curve down by its reconstruction error. Paper claims: W4A16
 * MicroScopiQ within ~1% of FP; W2A16 within ~4%, above several W4
 * baselines.
 */

#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "model/proxy_eval.h"
#include "quant/hessian.h"

using namespace msq;
using namespace msq::bench;

namespace {

/** FP in-context learning curve anchors (paper Fig. 10 shapes). */
struct Task
{
    const char *name;
    const char *model;
    std::vector<double> fpCurve;  // 0, 4, 8, 16, 32 shots
};

} // namespace

int
main()
{
    const std::vector<size_t> shots = {0, 4, 8, 16, 32};
    const std::vector<Task> tasks = {
        {"COCO CIDEr", "OpenFlamingo-9B", {74.0, 82.0, 86.0, 89.0, 92.0}},
        {"VizWiz", "VILA-7B", {48.0, 53.0, 55.0, 57.0, 58.5}},
        {"TextVQA", "VILA-7B", {57.0, 60.0, 61.5, 62.5, 63.0}},
    };

    PipelineConfig cfg;
    cfg.calibTokens = 96;
    cfg.evalTokens = 96;

    std::puts("Fig. 10: VLM weight-only quantization across in-context "
              "shots\n(proxy accuracy; FP curve anchored to the paper's "
              "figure shapes).\n");

    for (const Task &task : tasks) {
        const ModelProfile &model = modelByName(task.model);

        // One quantization pass per method; the NMSE shifts the curve.
        const double nmse_w4 =
            evaluateMethodOnModel(model, microScopiQMethod(4), cfg)
                .meanNmse;
        clearHessianCache();
        const double nmse_w2 =
            evaluateMethodOnModel(model, microScopiQMethod(2), cfg)
                .meanNmse;
        clearHessianCache();
        const double nmse_olive =
            evaluateMethodOnModel(model, oliveMethod(4), cfg).meanNmse;
        clearHessianCache();
        const double nmse_gptq =
            evaluateMethodOnModel(model, gptqMethod(4), cfg).meanNmse;
        clearHessianCache();

        Table t(std::string(task.name) + " (" + task.model + ")");
        std::vector<std::string> header = {"shots"};
        for (size_t s : shots)
            header.push_back(std::to_string(s));
        t.setHeader(header);

        auto curve = [&](const char *label, double nmse) {
            std::vector<std::string> row = {label};
            for (size_t i = 0; i < shots.size(); ++i)
                row.push_back(Table::fmt(
                    proxyAccuracy(task.fpCurve[i], nmse), 1));
            t.addRow(row);
        };
        {
            std::vector<std::string> row = {"FP16"};
            for (double v : task.fpCurve)
                row.push_back(Table::fmt(v, 1));
            t.addRow(row);
        }
        curve("MicroScopiQ-W4", nmse_w4);
        curve("MicroScopiQ-W2", nmse_w2);
        curve("OliVe-W4", nmse_olive);
        curve("GPTQ-W4", nmse_gptq);
        t.print();
    }
    std::puts("Claims under test: MicroScopiQ-W4 within ~1% of FP at "
              "every shot count;\nMicroScopiQ-W2 above the W4 baselines "
              "(OliVe in particular).");
    return 0;
}
