/**
 * @file
 * Cluster-tier benchmark: spawns real `model_server` processes under a
 * ReplicaSupervisor, fronts them with a ClusterController, and drives
 * the same open-loop request mix as examples/cluster_loadgen through
 * three phases, emitting BENCH_cluster.json (path as argv[1]; model as
 * argv[2]; server binary as argv[3], default resolved next to this
 * binary; schema checked by scripts/check_bench_json.py).
 *
 *  single  one replica behind the controller. The per-replica admission
 *          queue and batch are kept deliberately small, so the open-loop
 *          mix overloads it: requests bounce with typed OVERLOADED,
 *          controller pacing and client backoff stretch the wall clock.
 *  scaled  three replicas, identical mix. The aggregate queue absorbs
 *          the same offered load, so wall time collapses toward compute
 *          time; `scaling` = scaled/single throughput is the headline
 *          (the CI gate demands >= 2x even on a single-core host,
 *          because the win is capacity, not parallelism). Latency
 *          percentiles come from this healthy phase.
 *  chaos   three replicas, longer streams, SIGKILL the replica holding
 *          the most active routes mid-load. Every completed stream must
 *          be byte-identical (tokens and fold) to a fault-free
 *          in-process engine run; the supervisor must respawn the
 *          victim; the controller drain must drop zero streams.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cluster/controller.h"
#include "cluster/supervisor.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "common/table.h"
#include "model/model_zoo.h"
#include "net/client.h"
#include "net/frame.h"
#include "serve/clock.h"
#include "serve/decode.h"

using namespace msq;

namespace {

// Throughput phases: a simultaneous burst (arrival 0) so the offered
// concurrency — not the arrival schedule — is what the replica set
// must absorb. One replica admits ~(queue + batch) of it and sheds the
// rest into paced OVERLOADED retries; three admit nearly all of it.
constexpr size_t kRequests = 24;
constexpr uint32_t kArrivalMs = 0;
constexpr uint32_t kMaxNew = 8;
constexpr uint64_t kMixSeed = 1234;

// Chaos phase: longer streams so the SIGKILL lands mid-stream.
constexpr size_t kChaosRequests = 16;
constexpr uint32_t kChaosArrivalMs = 3;
constexpr uint32_t kChaosMaxNew = 48;
constexpr uint64_t kChaosSeed = 777;

// Per-replica knobs: a deliberately shallow queue and small batch so
// capacity — not CPU — is the contended resource.
constexpr size_t kIoWorkers = 1;
constexpr size_t kMaxQueue = 2;
constexpr size_t kMaxBatch = 2;

/** Same prompt function as examples/cluster_loadgen.cpp: a pure
 *  function of (seed, index) inside the demo vocabulary. */
std::vector<uint32_t>
makePrompt(uint64_t seed, size_t i, size_t vocab)
{
    const size_t len = 4 + (i % 5);
    std::vector<uint32_t> prompt(len);
    uint64_t x = seed * 0x9E3779B97F4A7C15ull + i + 1;
    for (size_t k = 0; k < len; ++k) {
        x ^= x >> 27;
        x *= 0x2545F4914F6CDD1Dull;
        prompt[k] = static_cast<uint32_t>((x >> 33) % vocab);
    }
    return prompt;
}

/** Mirror of examples/model_server.cpp's deployment: the reference
 *  engine must decode under the same geometry the replicas serve.
 *  (Batch composition cannot change the tokens — that is the
 *  determinism contract failover replay rests on.) */
DecodeConfig
replicaDecodeConfig()
{
    DecodeConfig cfg;
    cfg.maxBatchSeqs = kMaxBatch;
    cfg.stepTokenBudget = 32;
    cfg.prefillChunk = 8;
    cfg.kv = {2, 8, 8};
    cfg.vocab = 64;
    return cfg;
}

/** Fault-free reference stream from a private in-process engine. */
std::vector<uint32_t>
referenceStream(const ModelProfile &model, const MsqConfig &qcfg,
                uint64_t seed, size_t i, uint32_t max_new)
{
    DecodeEngine ref(model, qcfg, replicaDecodeConfig());
    ref.submit(makePrompt(seed, i, 64), max_new);
    const DecodeReport rep = ref.run();
    return rep.requests.front().tokens;
}

struct MixOutcome
{
    size_t completed = 0;
    size_t failed = 0;
    size_t mismatched = 0; ///< completed but not byte-identical
    size_t tokens = 0;
    double wallMs = 0.0;
    double tokensPerS = 0.0;
    uint64_t clientRetries = 0;
    uint64_t clientBackoffMs = 0;
    std::vector<double> firstToken;
    std::vector<double> perToken;
};

/** Fire `want.size()` requests open-loop at the given port and verify
 *  every completed stream against its reference. */
MixOutcome
runMix(uint16_t port, const std::vector<std::vector<uint32_t>> &want,
       uint32_t arrival_ms, uint32_t max_new, uint64_t seed)
{
    const size_t n = want.size();
    struct Slot
    {
        bool ok = false;
        bool match = false;
        double firstTokenMs = -1.0;
        double totalMs = 0.0;
        size_t tokens = 0;
        uint64_t retries = 0;
        uint64_t backoffMs = 0;
    };
    std::vector<Slot> slots(n);
    std::vector<std::thread> threads;
    threads.reserve(n);
    const uint64_t epoch = steadyNanos();
    for (size_t i = 0; i < n; ++i) {
        const double due = static_cast<double>(i) * arrival_ms;
        while (elapsedMs(epoch) < due)
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        threads.emplace_back([&, i] {
            ClientConfig cc;
            cc.port = port;
            cc.maxAttempts = 25;
            cc.backoffBaseMs = 15;
            cc.backoffCapMs = 150;
            cc.seed = seed + i;
            NetClient client(cc);
            const GenerateResult r =
                client.generate(makePrompt(seed, i, 64), max_new);
            Slot &s = slots[i];
            s.ok = r.code == NetCode::Ok;
            s.match = s.ok && r.tokens == want[i] &&
                      r.streamFold ==
                          tokenStreamFold(want[i].data(), want[i].size());
            s.firstTokenMs = r.firstTokenMs;
            s.totalMs = r.totalMs;
            s.tokens = r.tokens.size();
            s.retries = client.stats().retries;
            s.backoffMs = client.stats().backoffMsTotal;
        });
    }
    for (std::thread &t : threads)
        t.join();
    MixOutcome out;
    out.wallMs = elapsedMs(epoch);
    for (const Slot &s : slots) {
        out.clientRetries += s.retries;
        out.clientBackoffMs += s.backoffMs;
        if (!s.ok) {
            ++out.failed;
            continue;
        }
        ++out.completed;
        out.tokens += s.tokens;
        if (!s.match) {
            ++out.mismatched;
            continue;
        }
        if (s.firstTokenMs >= 0.0)
            out.firstToken.push_back(s.firstTokenMs);
        if (s.tokens > 1)
            out.perToken.push_back((s.totalMs - s.firstTokenMs) /
                                   static_cast<double>(s.tokens - 1));
    }
    out.tokensPerS =
        out.wallMs > 0.0
            ? static_cast<double>(out.tokens) / (out.wallMs / 1e3)
            : 0.0;
    return out;
}

SupervisorConfig
supervisorConfig(const std::string &binary, const std::string &model,
                 size_t replicas)
{
    SupervisorConfig sc;
    sc.serverBinary = binary;
    sc.model = model;
    sc.replicas = replicas;
    sc.ioWorkers = kIoWorkers;
    sc.maxQueue = kMaxQueue;
    sc.threads = 1;
    sc.maxBatch = kMaxBatch;
    return sc;
}

ControllerConfig
controllerConfig()
{
    ControllerConfig cc;
    cc.maxInflight = 64;
    // Enough replica attempts that the burst drains fully inside the
    // controller even against one shallow replica (the pacing between
    // attempts is the idle time the scaled phase eliminates).
    cc.maxAttempts = 12;
    cc.pollMs = 5;
    return cc;
}

void
writeLatencyJson(std::FILE *f, const char *name,
                 const std::vector<double> &v, bool trailing_comma)
{
    const SampleSummary s = summarize(v);
    std::fprintf(f,
                 "  \"%s\": {\"p50\": %.4f, \"p95\": %.4f, "
                 "\"p99\": %.4f, \"mean\": %.4f, \"max\": %.4f}%s\n",
                 name, percentile(v, 50.0), percentile(v, 95.0),
                 percentile(v, 99.0), s.mean, s.maxValue,
                 trailing_comma ? "," : "");
}

/** `<dir of argv0>/../examples/model_server` — the build-tree layout. */
std::string
defaultServerBinary(const char *argv0)
{
    std::string path(argv0);
    const size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    return dir + "/../examples/model_server";
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path =
        argc > 1 ? argv[1] : "BENCH_cluster.json";
    const std::string model_name =
        argc > 2 ? argv[2] : "TinyLM-decode";
    const std::string server_bin =
        argc > 3 ? argv[3] : defaultServerBinary(argv[0]);
    const ModelProfile &model = modelByName(model_name);
    if (!decodeCapable(model)) {
        std::fprintf(stderr, "%s carries no attention geometry\n",
                     model.name.c_str());
        return 1;
    }
    MsqConfig qcfg;
    qcfg.hessianCompensation = false;

    // Fault-free references (computed outside every timed region).
    std::vector<std::vector<uint32_t>> mixWant, chaosWant;
    for (size_t i = 0; i < kRequests; ++i)
        mixWant.push_back(
            referenceStream(model, qcfg, kMixSeed, i, kMaxNew));
    for (size_t i = 0; i < kChaosRequests; ++i)
        chaosWant.push_back(
            referenceStream(model, qcfg, kChaosSeed, i, kChaosMaxNew));

    // ---- single phase: one small replica, overload-bound ----------
    MixOutcome single;
    {
        ReplicaSupervisor sup(
            supervisorConfig(server_bin, model_name, 1));
        if (!sup.start()) {
            std::fprintf(stderr, "cannot spawn the single replica "
                                 "(server binary: %s)\n",
                         server_bin.c_str());
            return 1;
        }
        ClusterController ctl(sup, controllerConfig());
        if (!ctl.start()) {
            std::fprintf(stderr, "cannot start the controller\n");
            return 1;
        }
        single = runMix(ctl.boundPort(), mixWant, kArrivalMs, kMaxNew,
                        kMixSeed);
        ctl.drain();
        sup.stop();
    }

    // ---- scaled phase: three replicas, identical mix --------------
    MixOutcome scaled;
    std::vector<uint64_t> perReplicaServed;
    {
        ReplicaSupervisor sup(
            supervisorConfig(server_bin, model_name, 3));
        if (!sup.start()) {
            std::fprintf(stderr, "cannot spawn the replica set\n");
            return 1;
        }
        ClusterController ctl(sup, controllerConfig());
        if (!ctl.start()) {
            std::fprintf(stderr, "cannot start the controller\n");
            return 1;
        }
        scaled = runMix(ctl.boundPort(), mixWant, kArrivalMs, kMaxNew,
                        kMixSeed);
        ctl.drain();
        perReplicaServed = ctl.stats().perReplicaServed;
        sup.stop();
    }
    const double scaling = single.tokensPerS > 0.0
                               ? scaled.tokensPerS / single.tokensPerS
                               : 0.0;

    // ---- chaos phase: SIGKILL a loaded replica mid-stream ---------
    MixOutcome chaos;
    uint64_t chaosFailovers = 0, chaosDropped = 0;
    uint64_t chaosKills = 0, chaosRespawns = 0;
    bool chaosDrained = false, victimRespawned = false;
    {
        ReplicaSupervisor sup(
            supervisorConfig(server_bin, model_name, 3));
        if (!sup.start()) {
            std::fprintf(stderr, "cannot spawn the chaos replica set\n");
            return 1;
        }
        ClusterController ctl(sup, controllerConfig());
        if (!ctl.start()) {
            std::fprintf(stderr, "cannot start the controller\n");
            return 1;
        }
        // Assassin: wait until some replica is actually streaming,
        // then SIGKILL the busiest one and wait for its respawn.
        std::thread assassin([&] {
            size_t victim = 0;
            uint64_t victimGen = 0;
            bool armed = false;
            for (int spins = 0; spins < 10000 && !armed; ++spins) {
                const ControllerStats cs = ctl.stats();
                uint64_t best = 0;
                for (size_t i = 0; i < cs.perReplicaActive.size(); ++i)
                    if (cs.perReplicaActive[i] > best) {
                        best = cs.perReplicaActive[i];
                        victim = i;
                        armed = true;
                    }
                if (!armed)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(1));
            }
            if (!armed)
                return;
            for (const ReplicaEndpoint &ep : sup.endpoints())
                if (ep.index == victim)
                    victimGen = ep.generation;
            if (!sup.killReplica(victim))
                return;
            // Wait (bounded) for the monitor to respawn the victim.
            for (int spins = 0; spins < 10000; ++spins) {
                const std::vector<ReplicaEndpoint> eps = sup.endpoints();
                if (victim < eps.size() && eps[victim].healthy &&
                    eps[victim].generation > victimGen) {
                    victimRespawned = true;
                    return;
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
        });
        chaos = runMix(ctl.boundPort(), chaosWant, kChaosArrivalMs,
                       kChaosMaxNew, kChaosSeed);
        assassin.join();
        chaosDrained = ctl.drain();
        const ControllerStats cs = ctl.stats();
        chaosFailovers = cs.failovers;
        chaosDropped = cs.droppedStreams;
        sup.stop();
        const SupervisorStats ss = sup.stats();
        chaosKills = ss.kills;
        chaosRespawns = ss.respawns;
    }
    const bool checksum_match =
        chaos.completed >= 1 && chaos.mismatched == 0;
    const bool chaos_ok = chaosDrained && chaosDropped == 0 &&
                          chaos.failed == 0 && checksum_match &&
                          chaosKills >= 1 && chaosRespawns >= 1 &&
                          victimRespawned;

    // ---- report ----------------------------------------------------
    Table t("Cluster tier, " + model.name + ", " + qcfg.name() + " (" +
            std::to_string(threadCount()) + " threads, queue " +
            std::to_string(kMaxQueue) + ", batch " +
            std::to_string(kMaxBatch) + " per replica)");
    t.setHeader({"phase", "quantity", "value"});
    t.addRow({"single", "completed / requests",
              Table::fmtInt(static_cast<long long>(single.completed)) +
                  " / " +
                  Table::fmtInt(static_cast<long long>(kRequests))});
    t.addRow({"", "wall (ms)", Table::fmt(single.wallMs, 1)});
    t.addRow({"", "throughput (tok/s)",
              Table::fmt(single.tokensPerS, 1)});
    t.addRow({"", "client retries",
              Table::fmtInt(
                  static_cast<long long>(single.clientRetries))});
    t.addSeparator();
    t.addRow({"scaled", "replicas", "3"});
    t.addRow({"", "completed / requests",
              Table::fmtInt(static_cast<long long>(scaled.completed)) +
                  " / " +
                  Table::fmtInt(static_cast<long long>(kRequests))});
    t.addRow({"", "wall (ms)", Table::fmt(scaled.wallMs, 1)});
    t.addRow({"", "throughput (tok/s)",
              Table::fmt(scaled.tokensPerS, 1)});
    t.addRow({"", "scaling vs single", Table::fmt(scaling, 2) + "x"});
    t.addRow({"", "first-token p50 (ms)",
              Table::fmt(percentile(scaled.firstToken, 50.0), 2)});
    t.addRow({"", "first-token p99 (ms)",
              Table::fmt(percentile(scaled.firstToken, 99.0), 2)});
    t.addSeparator();
    t.addRow({"chaos", "completed / requests",
              Table::fmtInt(static_cast<long long>(chaos.completed)) +
                  " / " +
                  Table::fmtInt(
                      static_cast<long long>(kChaosRequests))});
    t.addRow({"", "failovers",
              Table::fmtInt(static_cast<long long>(chaosFailovers))});
    t.addRow({"", "kills / respawns",
              Table::fmtInt(static_cast<long long>(chaosKills)) + " / " +
                  Table::fmtInt(static_cast<long long>(chaosRespawns))});
    t.addRow({"", "dropped streams",
              Table::fmtInt(static_cast<long long>(chaosDropped))});
    t.addRow({"", "streams byte-identical",
              checksum_match ? "yes" : "NO"});
    t.print();

    std::FILE *f = std::fopen(json_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"cluster\",\n"
                 "  \"model\": \"%s\",\n"
                 "  \"method\": \"%s\",\n"
                 "  \"threads\": %u,\n"
                 "  \"replicas\": 3,\n"
                 "  \"requests\": %zu,\n"
                 "  \"max_new_tokens\": %u,\n"
                 "  \"queue_per_replica\": %zu,\n"
                 "  \"batch_per_replica\": %zu,\n",
                 model.name.c_str(), qcfg.name().c_str(), threadCount(),
                 kRequests, kMaxNew, kMaxQueue, kMaxBatch);
    std::fprintf(f,
                 "  \"single\": {\"requests\": %zu, \"completed\": %zu, "
                 "\"wall_ms\": %.3f, \"tokens_per_s\": %.2f, "
                 "\"client_retries\": %llu},\n",
                 kRequests, single.completed, single.wallMs,
                 single.tokensPerS,
                 static_cast<unsigned long long>(single.clientRetries));
    std::fprintf(f,
                 "  \"scaled\": {\"requests\": %zu, \"completed\": %zu, "
                 "\"wall_ms\": %.3f, \"tokens_per_s\": %.2f, "
                 "\"client_retries\": %llu, \"per_replica_served\": [",
                 kRequests, scaled.completed, scaled.wallMs,
                 scaled.tokensPerS,
                 static_cast<unsigned long long>(scaled.clientRetries));
    for (size_t i = 0; i < perReplicaServed.size(); ++i)
        std::fprintf(f, "%s%llu", i ? ", " : "",
                     static_cast<unsigned long long>(perReplicaServed[i]));
    std::fprintf(f, "]},\n");
    std::fprintf(f, "  \"scaling\": %.3f,\n", scaling);
    writeLatencyJson(f, "first_token_ms", scaled.firstToken, true);
    writeLatencyJson(f, "per_token_ms", scaled.perToken, true);
    std::fprintf(
        f,
        "  \"failover\": {\"requests\": %zu, \"completed\": %zu, "
        "\"matched\": %zu, \"failovers\": %llu, \"kills\": %llu, "
        "\"respawns\": %llu, \"victim_respawned\": %s, "
        "\"checksum_match\": %s, \"dropped_streams\": %llu}\n"
        "}\n",
        kChaosRequests, chaos.completed,
        chaos.completed - chaos.mismatched,
        static_cast<unsigned long long>(chaosFailovers),
        static_cast<unsigned long long>(chaosKills),
        static_cast<unsigned long long>(chaosRespawns),
        victimRespawned ? "true" : "false",
        checksum_match ? "true" : "false",
        static_cast<unsigned long long>(chaosDropped));
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());

    const bool ok = single.failed == 0 && single.mismatched == 0 &&
                    scaled.failed == 0 && scaled.mismatched == 0 &&
                    chaos_ok;
    return ok ? 0 : 1;
}
