/**
 * @file
 * Fig. 14 reproduction: effect of the outlier micro-block size B_mu on
 * proxy perplexity, effective bit width and outlier diversity (standard
 * deviation of outlier magnitudes within a micro-block) for the
 * LLaMA3-8B profile. B_mu = 2/4 prune outliers; large B_mu shares the
 * MX scale across diverse outliers and inflates both error and EBW;
 * the balance sits at B_mu = 8.
 */

#include <cmath>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "core/microscopiq.h"
#include "core/outlier.h"
#include "model/calib_gen.h"
#include "model/model_zoo.h"
#include "model/pipeline.h"
#include "model/proxy_eval.h"
#include "model/weight_gen.h"
#include "quant/hessian.h"

using namespace msq;

namespace {

/** Std-dev of outlier magnitudes within micro-blocks, averaged. */
double
outlierDiversity(const Matrix &w, size_t bmu)
{
    std::vector<double> devs;
    for (size_t r = 0; r < w.rows(); ++r) {
        const double *row = w.rowPtr(r);
        const std::vector<bool> mask = detectOutliers(row, w.cols());
        for (size_t b0 = 0; b0 < w.cols(); b0 += bmu) {
            std::vector<double> mags;
            for (size_t i = b0; i < std::min(b0 + bmu, w.cols()); ++i)
                if (mask[i])
                    mags.push_back(std::fabs(row[i]));
            if (mags.size() >= 2)
                devs.push_back(stddev(mags));
        }
    }
    return devs.empty() ? 0.0 : mean(devs);
}

} // namespace

int
main()
{
    const ModelProfile &model = modelByName("LLaMA3-8B");
    PipelineConfig cfg;
    cfg.calibTokens = 96;
    cfg.evalTokens = 96;

    // Paper series (B_mu -> PPL, EBW, sigma), for side-by-side print.
    struct PaperRow
    {
        size_t bmu;
        double ppl;
        double ebw;
        double sigma;
    };
    const std::vector<PaperRow> paper = {
        {2, 18.64, 2.10, 0.029},  {4, 10.96, 2.29, 0.042},
        {8, 8.97, 2.42, 0.078},   {16, 8.97, 3.17, 0.095},
        {32, 9.02, 4.65, 0.097},  {64, 9.68, 4.93, 0.106},
        {128, 10.96, 6.28, 0.154}, {256, 13.39, 7.53, 0.263},
    };

    Table t("Fig. 14: outlier group size sweep, LLaMA3-8B "
            "(paper -> measured)");
    t.setHeader({"B_mu", "proxy PPL", "EBW (bits)", "outlier sigma"});

    for (const PaperRow &p : paper) {
        QuantMethod m;
        m.name = "MSQ";
        const size_t bmu = p.bmu;
        m.makeQuantizer = [bmu] {
            MsqConfig c;
            c.inlierBits = 2;
            c.microBlock = bmu;
            c.macroBlock = std::max<size_t>(bmu, 128);
            return std::make_unique<MicroScopiQQuantizer>(c);
        };
        const ModelEvalResult res = evaluateMethodOnModel(model, m, cfg);
        clearHessianCache();

        const Matrix w0 = generateLayerWeights(model, 0);
        t.addRow({std::to_string(p.bmu),
                  Table::fmt(p.ppl, 2) + " -> " +
                      Table::fmt(res.proxyPpl, 2),
                  Table::fmt(p.ebw, 2) + " -> " +
                      Table::fmt(res.meanEbw, 2),
                  Table::fmt(p.sigma, 3) + " -> " +
                      Table::fmt(outlierDiversity(w0, p.bmu), 3)});
    }
    t.print();
    std::puts("Shape under test: U-shaped PPL (pruning losses at "
              "B_mu<=4, sharing losses at\nB_mu>=32), monotone EBW and "
              "outlier-diversity growth; balance at B_mu = 8.");
    return 0;
}
