/**
 * @file
 * Quantize-and-export: run the MicroScopiQ PTQ pipeline over a model
 * zoo profile and write the deployment as a persistent `.msq` container
 * (io/msq_file.h) — the expensive half of a cold start, done once.
 * `msq_inspect` dumps the result; a server (serve_demo, ServeEngine
 * with ServeConfig::cacheDir) loads it back without re-quantizing.
 *
 * Usage:
 *   msq_pack <model> <out.msq> [--bits 2|4] [--calib N] [--no-hessian]
 *            [--threads N]
 *
 * e.g.
 *   ./build/examples/msq_pack LLaMA2-7B llama2-w2.msq
 *   ./build/examples/msq_pack TinyLM tiny-w2.msq        # golden fixture
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/parallel.h"
#include "io/msq_file.h"
#include "model/model_zoo.h"
#include "serve/weight_cache.h"

using namespace msq;

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: msq_pack <model> <out.msq> [--bits 2|4] "
                     "[--calib N] [--no-hessian] [--threads N]\n");
        return 2;
    }
    const std::string model_name = argv[1];
    const std::string out_path = argv[2];
    MsqConfig cfg; // the paper's headline W2 setting
    size_t calib_tokens = 128;
    for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--bits") == 0 && i + 1 < argc)
            cfg.inlierBits =
                static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
        else if (std::strcmp(argv[i], "--calib") == 0 && i + 1 < argc)
            calib_tokens = std::strtoul(argv[++i], nullptr, 10);
        else if (std::strcmp(argv[i], "--no-hessian") == 0)
            cfg.hessianCompensation = false;
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            setThreadCount(static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10)));
        else {
            std::fprintf(stderr, "msq_pack: unknown option '%s'\n", argv[i]);
            return 2;
        }
    }
    if (cfg.inlierBits != 2 && cfg.inlierBits != 4) {
        std::fprintf(stderr, "msq_pack: --bits must be 2 or 4\n");
        return 2;
    }

    const ModelProfile &model = modelByName(model_name);
    std::printf("quantizing %s as %s (calib %zu tokens)...\n",
                model.name.c_str(), cfg.name().c_str(), calib_tokens);
    const PackedModelPtr packed = getPackedModel(model, cfg, calib_tokens);

    MsqModelFile file;
    file.model = model.name;
    file.config = cfg;
    file.calibTokens = calib_tokens;
    file.layers = packed->layers;
    for (const LayerSpec &spec : model.layers)
        file.layerNames.push_back(spec.name);

    const IoResult res = saveModel(out_path, file);
    if (!res) {
        std::fprintf(stderr, "msq_pack: %s: %s\n", ioCodeName(res.code),
                     res.message.c_str());
        return 1;
    }

    // Report what landed on disk, via the same reader a server uses.
    MsqReader reader;
    const IoResult check = reader.open(out_path);
    if (!check) {
        std::fprintf(stderr, "msq_pack: reopen failed: %s\n",
                     check.message.c_str());
        return 1;
    }
    std::printf("wrote %s: %zu layers, %llu bytes, EBW %.3f bits, "
                "quantized in %.1f ms\n",
                out_path.c_str(), reader.layerCount(),
                static_cast<unsigned long long>(reader.fileBytes()),
                packed->meanEbw, packed->buildMs);
    return 0;
}
