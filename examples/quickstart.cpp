/**
 * @file
 * Quickstart: quantize one weight matrix with MicroScopiQ, inspect the
 * packed layout, dequantize, and compare against a plain 2-bit MX-INT
 * baseline.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "core/microscopiq.h"
#include "core/outlier.h"

using namespace msq;

namespace {

/** A small synthetic FM-like layer: Gaussian bulk + planted outliers. */
Matrix
makeWeights(size_t k, size_t o, Rng &rng)
{
    Matrix w(k, o);
    for (size_t r = 0; r < k; ++r) {
        for (size_t c = 0; c < o; ++c) {
            double v = rng.gaussian(0.0, 0.02);
            if (rng.bernoulli(0.015))
                v = rng.uniform(0.15, 0.45) *
                    (rng.bernoulli(0.5) ? 1.0 : -1.0);
            w(r, c) = v;
        }
    }
    return w;
}

Matrix
makeCalib(size_t k, size_t tokens, Rng &rng)
{
    Matrix x(k, tokens);
    for (size_t r = 0; r < k; ++r)
        for (size_t t = 0; t < tokens; ++t)
            x(r, t) = rng.gaussian(0.0, 1.0);
    return x;
}

} // namespace

int
main()
{
    Rng rng(2025);
    const size_t k = 128, o = 512;
    const Matrix w = makeWeights(k, o, rng);
    const Matrix calib = makeCalib(k, 128, rng);

    // --- Quantize with MicroScopiQ at the paper's headline setting:
    // 2-bit MX-INT inliers, 4-bit MX-FP (e1m2) outliers, micro-blocks
    // of 8, Hessian-compensated.
    MsqConfig config;
    config.inlierBits = 2;
    MicroScopiQQuantizer quantizer(config);
    const QuantResult result = quantizer.quantize(w, calib);
    const PackedLayer &packed = quantizer.packed();

    // --- Baseline: the same layer with no outlier handling.
    MsqConfig plain_cfg;
    plain_cfg.inlierBits = 2;
    plain_cfg.outlierMode = OutlierMode::None;
    MicroScopiQQuantizer plain(plain_cfg);
    const QuantResult base = plain.quantize(w, calib);

    const Matrix ref = w.transposedMatmul(calib);
    const double nmse_msq =
        result.dequant.transposedMatmul(calib).normalizedErrorTo(ref);
    const double nmse_plain =
        base.dequant.transposedMatmul(calib).normalizedErrorTo(ref);

    const OutlierStats stats = analyzeOutliers(w, config.macroBlock);

    Table t("MicroScopiQ quickstart (128 x 512 synthetic FM layer)");
    t.setHeader({"quantity", "value"});
    t.addRow({"weights", Table::fmtInt(static_cast<long long>(w.size()))});
    t.addRow({"outliers (3-sigma)",
              Table::fmt(100.0 * stats.outlierFraction(), 2) + " %"});
    t.addRow({"adjacent outliers",
              Table::fmt(100.0 * stats.adjacentFraction(), 2) + " %"});
    t.addSeparator();
    t.addRow({"EBW (Eq. 4)", Table::fmt(result.ebw, 3) + " bits"});
    t.addRow({"EBW (measured stream)",
              Table::fmt(packed.measuredEbw(), 3) + " bits"});
    t.addRow({"outliers stored at 2x precision",
              Table::fmtInt(static_cast<long long>(
                  packed.stats.outliersStored))});
    t.addRow({"inliers pruned for redistribution",
              Table::fmtInt(static_cast<long long>(
                  packed.stats.inliersPruned))});
    t.addSeparator();
    t.addRow({"output NMSE, MicroScopiQ-W2", Table::fmt(nmse_msq, 5)});
    t.addRow({"output NMSE, plain MX-INT-2", Table::fmt(nmse_plain, 5)});
    t.addRow({"error reduction",
              Table::fmt(nmse_plain / nmse_msq, 2) + "x"});
    t.print();

    std::printf("\nThe packed layer serializes to %zu bytes and round-trips"
                " losslessly;\nsee tests/test_packed_tensor.cc for the"
                " bit-level layout checks.\n",
                packed.serialize().size());
    return 0;
}
