/**
 * @file
 * Whole-model example: quantize every representative layer of a
 * synthetic LLaMA-3-8B profile with several methods (MicroScopiQ,
 * GPTQ, OliVe, GOBO, RTN) at W2/W4, compare proxy perplexity and
 * effective bit width — a miniature of the paper's Table 2 workflow.
 */

#include <memory>

#include "common/table.h"
#include "core/microscopiq.h"
#include "model/model_zoo.h"
#include "model/pipeline.h"
#include "quant/gobo.h"
#include "quant/gptq.h"
#include "quant/hessian.h"
#include "quant/olive.h"
#include "quant/rtn.h"

using namespace msq;

int
main()
{
    const ModelProfile &model = modelByName("LLaMA3-8B");
    PipelineConfig pcfg;
    pcfg.calibTokens = 96;
    pcfg.evalTokens = 96;

    std::vector<QuantMethod> methods;
    methods.push_back({"MicroScopiQ-W2", [] {
                           MsqConfig c;
                           c.inlierBits = 2;
                           return std::make_unique<MicroScopiQQuantizer>(c);
                       }});
    methods.push_back({"MicroScopiQ-W4", [] {
                           MsqConfig c;
                           c.inlierBits = 4;
                           return std::make_unique<MicroScopiQQuantizer>(c);
                       }});
    methods.push_back({"GPTQ-W4", [] {
                           GptqConfig c;
                           c.bits = 4;
                           return std::make_unique<GptqQuantizer>(c);
                       }});
    methods.push_back({"OliVe-W4", [] {
                           return std::make_unique<OliveQuantizer>(4);
                       }});
    methods.push_back({"GOBO", [] {
                           return std::make_unique<GoboQuantizer>(3);
                       }});
    methods.push_back({"RTN-W4", [] {
                           return std::make_unique<RtnQuantizer>(4);
                       }});

    Table t("Synthetic " + model.name + " weight-only quantization "
            "(proxy metrics; FP baseline PPL " +
            Table::fmt(model.fpMetric, 2) + ")");
    t.setHeader({"method", "mean NMSE", "proxy PPL", "EBW (bits)"});
    for (const QuantMethod &method : methods) {
        const ModelEvalResult res =
            evaluateMethodOnModel(model, method, pcfg);
        t.addRow({method.name, Table::fmt(res.meanNmse, 5),
                  Table::fmt(res.proxyPpl, 2), Table::fmt(res.meanEbw, 2)});
    }
    t.print();
    clearHessianCache();
    return 0;
}
