/**
 * @file
 * Command-line client for the model_server example: submits
 * deterministic synthetic prompts over the streaming TCP protocol and
 * prints each token stream with its integrity-checked fold, retrying
 * transient failures (connection loss, OVERLOADED, SHUTTING_DOWN) with
 * capped jittered backoff.
 *
 * Usage:
 *   model_client <port> [requests] [max-new-tokens] [seed]
 *
 * e.g.
 *   ./build/examples/model_server TinyLM-decode 7531 &
 *   ./build/examples/model_client 7531 4 16
 *
 * The prompts are seeded, so two invocations with the same arguments
 * print identical streams — across restarts of the server, too.
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/rng.h"
#include "net/client.h"
#include "net/frame.h"

using namespace msq;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: model_client <port> [requests] "
                     "[max-new-tokens] [seed]\n");
        return 1;
    }
    const unsigned long port = std::strtoul(argv[1], nullptr, 10);
    const size_t requests =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
    const size_t max_new =
        argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 16;
    const uint64_t seed =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;

    ClientConfig cfg;
    cfg.port = static_cast<uint16_t>(port);
    cfg.seed = seed;
    NetClient client(cfg);

    size_t failures = 0;
    for (size_t r = 0; r < requests; ++r) {
        Rng rng(seed * 1000 + r);
        std::vector<uint32_t> prompt(4 + r % 5);
        for (uint32_t &tok : prompt)
            tok = static_cast<uint32_t>(rng.uniformInt(64));

        const GenerateResult res = client.generate(prompt, max_new);
        if (res.code != NetCode::Ok) {
            ++failures;
            std::printf("request %zu: %s", r, netCodeName(res.code));
            if (res.code == NetCode::Rejected)
                std::printf(" (%s)", serveErrorName(res.serverError));
            std::printf(" after %u attempt(s)\n", res.attempts);
            continue;
        }
        std::printf("request %zu (%u attempt(s), first token "
                    "%.2f ms, total %.2f ms, fold %016llx):",
                    r, res.attempts, res.firstTokenMs, res.totalMs,
                    static_cast<unsigned long long>(res.streamFold));
        for (uint32_t tok : res.tokens)
            std::printf(" %u", tok);
        std::printf("\n");
    }
    return failures == 0 ? 0 : 1;
}
