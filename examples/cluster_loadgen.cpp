/**
 * @file
 * Multi-threaded open-loop load generator for the cluster tier: fires
 * requests at a fixed arrival rate against a ClusterController (or a
 * single model_server — same wire protocol) without waiting for
 * completions, then reports latency percentiles and the aggregated
 * ClientStats retry/failover counters.
 *
 * Usage:
 *   cluster_loadgen <port> [requests] [arrival-ms] [max-new] [seed]
 *
 * Open loop means offered load is a property of the schedule, not of
 * the server's speed: each request gets its own thread launched at
 * its scheduled arrival time, so a slow or overloaded target faces a
 * growing backlog instead of an accidentally self-throttling client.
 * Prompts are a pure function of (seed, request index), so two runs
 * against deterministic replicas stream identical tokens.
 *
 * Exit status: 0 iff every request completed with a verified stream.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "net/client.h"
#include "serve/clock.h"

using namespace msq;

namespace {

/** Deterministic prompt for request `i`: length 4..8, tokens inside
 *  the demo vocabulary (model_server deploys vocab 64). */
std::vector<uint32_t>
makePrompt(uint64_t seed, size_t i, size_t vocab)
{
    const size_t len = 4 + (i % 5);
    std::vector<uint32_t> prompt(len);
    uint64_t x = seed * 0x9E3779B97F4A7C15ull + i + 1;
    for (size_t k = 0; k < len; ++k) {
        x ^= x >> 27;
        x *= 0x2545F4914F6CDD1Dull;
        prompt[k] = static_cast<uint32_t>((x >> 33) % vocab);
    }
    return prompt;
}

struct RequestOutcome
{
    bool ok = false;
    double firstTokenMs = -1.0;
    double totalMs = 0.0;
    size_t tokens = 0;
    ClientStats stats;
};

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: cluster_loadgen <port> [requests] "
                     "[arrival-ms] [max-new] [seed]\n");
        return 2;
    }
    const uint16_t port =
        static_cast<uint16_t>(std::strtoul(argv[1], nullptr, 10));
    const size_t requests =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 24;
    const uint32_t arrivalMs =
        argc > 3 ? static_cast<uint32_t>(std::strtoul(argv[3], nullptr, 10))
                 : 5;
    const uint32_t maxNew =
        argc > 4 ? static_cast<uint32_t>(std::strtoul(argv[4], nullptr, 10))
                 : 16;
    const uint64_t seed =
        argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 42;

    std::vector<RequestOutcome> outcomes(requests);
    std::vector<std::thread> threads;
    threads.reserve(requests);

    const uint64_t epoch = steadyNanos();
    for (size_t i = 0; i < requests; ++i) {
        // Open-loop arrival schedule: launch at i * arrivalMs,
        // regardless of how earlier requests are faring.
        const double due = static_cast<double>(i) * arrivalMs;
        while (elapsedMs(epoch) < due)
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        threads.emplace_back([&, i] {
            ClientConfig cc;
            cc.port = port;
            cc.maxAttempts = 8;
            cc.backoffBaseMs = 20;
            cc.backoffCapMs = 200;
            cc.seed = seed + i;
            NetClient client(cc);
            const GenerateResult r =
                client.generate(makePrompt(seed, i, 64), maxNew);
            RequestOutcome &out = outcomes[i];
            out.ok = r.code == NetCode::Ok;
            out.firstTokenMs = r.firstTokenMs;
            out.totalMs = r.totalMs;
            out.tokens = r.tokens.size();
            out.stats = client.stats();
        });
    }
    for (std::thread &t : threads)
        t.join();
    const double wallMs = elapsedMs(epoch);

    size_t ok = 0, failed = 0, tokens = 0;
    ClientStats agg;
    std::vector<double> firstToken, perToken;
    for (const RequestOutcome &out : outcomes) {
        if (out.ok) {
            ++ok;
            tokens += out.tokens;
            if (out.firstTokenMs >= 0.0)
                firstToken.push_back(out.firstTokenMs);
            if (out.tokens > 0)
                perToken.push_back(out.totalMs /
                                   static_cast<double>(out.tokens));
        } else {
            ++failed;
        }
        agg.attempts += out.stats.attempts;
        agg.retries += out.stats.retries;
        agg.reconnects += out.stats.reconnects;
        agg.failovers += out.stats.failovers;
        agg.backoffSleeps += out.stats.backoffSleeps;
        agg.backoffMsTotal += out.stats.backoffMsTotal;
        agg.connectionsLost += out.stats.connectionsLost;
        agg.timeouts += out.stats.timeouts;
        agg.rejectedOverloaded += out.stats.rejectedOverloaded;
        agg.rejectedShuttingDown += out.stats.rejectedShuttingDown;
        agg.rejectedOther += out.stats.rejectedOther;
    }

    Table table("cluster loadgen: port " + std::to_string(port));
    table.setHeader({"metric", "value"});
    table.addRow({"requests", Table::fmtInt(static_cast<long long>(requests))});
    table.addRow({"completed", Table::fmtInt(static_cast<long long>(ok))});
    table.addRow({"failed", Table::fmtInt(static_cast<long long>(failed))});
    table.addRow({"tokens", Table::fmtInt(static_cast<long long>(tokens))});
    table.addRow({"wall ms", Table::fmt(wallMs, 1)});
    table.addRow({"tokens/s",
                  Table::fmt(wallMs > 0.0
                                 ? static_cast<double>(tokens) * 1e3 / wallMs
                                 : 0.0,
                             1)});
    if (!firstToken.empty()) {
        table.addRow({"first-token p50 ms",
                      Table::fmt(percentile(firstToken, 50.0), 2)});
        table.addRow({"first-token p95 ms",
                      Table::fmt(percentile(firstToken, 95.0), 2)});
        table.addRow({"first-token p99 ms",
                      Table::fmt(percentile(firstToken, 99.0), 2)});
    }
    table.addSeparator();
    table.addRow({"attempts", Table::fmtInt(static_cast<long long>(agg.attempts))});
    table.addRow({"retries", Table::fmtInt(static_cast<long long>(agg.retries))});
    table.addRow({"failovers", Table::fmtInt(static_cast<long long>(agg.failovers))});
    table.addRow({"backoff sleeps",
                  Table::fmtInt(static_cast<long long>(agg.backoffSleeps))});
    table.addRow({"backoff ms",
                  Table::fmtInt(static_cast<long long>(agg.backoffMsTotal))});
    table.addRow({"conns lost",
                  Table::fmtInt(static_cast<long long>(agg.connectionsLost))});
    table.addRow({"rej overloaded",
                  Table::fmtInt(static_cast<long long>(agg.rejectedOverloaded))});
    table.print();

    return failed == 0 ? 0 : 1;
}
