/**
 * @file
 * Serving quickstart: deploy a model zoo profile on the packed-execution
 * engine and stream synthetic requests through the batching scheduler.
 *
 * Usage:
 *   serve_demo [model] [requests] [tokens-per-request] [batch] [threads]
 *              [cache-dir]
 *
 * e.g.
 *   ./build/examples/serve_demo LLaMA2-7B 64 4 16
 *   ./build/examples/serve_demo Phi3-3.8B 32 8 1     # batching off
 *   ./build/examples/serve_demo LLaMA2-7B 64 4 16 0 /var/cache/msq
 *
 * The engine quantizes every representative layer once into the
 * packed-weight cache (the expensive part), then serves requests
 * straight from the Fig. 5 bit-codes: integer code x code products
 * scaled by powers of two, never touching a dequantized weight matrix.
 * With a cache-dir the deployment is persisted as an `.msq` container
 * (see msq_pack / msq_inspect): the first run quantizes and writes it,
 * every later run cold-starts by loading it ("deployment source"
 * in the table flips from "quantize" to "disk").
 *
 * MSQ_KERNEL=scalar|sse2|avx2|neon pins the GEMM micro-kernel's SIMD
 * path (default: widest the host supports); every path serves
 * identical bytes, so the override only changes throughput.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/parallel.h"
#include "common/table.h"
#include "core/msq_config.h"
#include "model/model_zoo.h"
#include "serve/engine.h"

using namespace msq;

int
main(int argc, char **argv)
{
    const std::string model_name = argc > 1 ? argv[1] : "LLaMA2-7B";
    const size_t requests = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 64;
    const size_t tokens = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 4;
    const size_t batch = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 16;
    if (argc > 5 && std::strtoul(argv[5], nullptr, 10) > 0)
        setThreadCount(
            static_cast<unsigned>(std::strtoul(argv[5], nullptr, 10)));

    const ModelProfile &model = modelByName(model_name);
    MsqConfig qcfg;  // the paper's headline W2 setting

    ServeConfig scfg;
    scfg.maxBatchRequests = batch == 0 ? 1 : batch;
    scfg.maxBatchTokens = scfg.maxBatchRequests * tokens;
    if (argc > 6)
        scfg.cacheDir = argv[6];

    std::printf("deploying %s as %s (packed-weight cache build)...\n",
                model.name.c_str(), qcfg.name().c_str());
    ServeEngine engine(model, qcfg, scfg);
    const PackedModel &packed = engine.packedModel();

    for (uint64_t r = 0; r < requests; ++r)
        engine.submit(tokens, r);
    const ServeReport rep = engine.drain();

    Table t("serve_demo: " + model.name + ", " +
            std::to_string(requests) + " requests x " +
            std::to_string(tokens) + " tokens, batch " +
            std::to_string(scfg.maxBatchRequests) + ", " +
            std::to_string(threadCount()) + " threads");
    t.setHeader({"quantity", "value"});
    t.addRow({"deployment source", packed.source});
    t.addRow({"quantize/load (ms)", Table::fmt(packed.buildMs, 1)});
    t.addRow({"plan decode (ms)", Table::fmt(packed.planMs, 1)});
    t.addRow({"EBW (Eq. 4)", Table::fmt(packed.meanEbw, 3) + " bits"});
    t.addRow({"integer MACs/token",
              Table::fmtInt(static_cast<long long>(packed.termsPerToken))});
    t.addSeparator();
    t.addRow({"batches executed",
              Table::fmtInt(static_cast<long long>(rep.batches))});
    t.addRow({"p50 latency (ms)", Table::fmt(rep.p50Ms, 2)});
    t.addRow({"p95 latency (ms)", Table::fmt(rep.p95Ms, 2)});
    t.addRow({"p99 latency (ms)", Table::fmt(rep.p99Ms, 2)});
    t.addRow({"throughput (tokens/s)", Table::fmt(rep.tokensPerSec, 1)});
    t.addRow({"throughput (requests/s)",
              Table::fmt(rep.requestsPerSec, 1)});
    t.addRow({"integer MACs/s", Table::fmt(rep.macsPerSec / 1e6, 1) + " M"});
    t.print();

    // A request's output bytes never depend on batch composition or
    // thread count; print one checksum so runs can be diffed.
    if (!rep.requests.empty())
        std::printf("\nrequest %llu output checksum: %.17g\n",
                    static_cast<unsigned long long>(rep.requests[0].id),
                    rep.requests[0].outputCheck);
    return 0;
}
