/**
 * @file
 * Autoregressive generation quickstart: deploy a decode-capable model
 * zoo profile and generate token streams with iteration-level
 * continuous batching, attention running against the packed 2-bit KV
 * pool.
 *
 * Usage:
 *   decode_demo [model] [requests] [max-new-tokens] [batch] [threads]
 *               [static]
 *
 * e.g.
 *   ./build/examples/decode_demo TinyLM-decode
 *   ./build/examples/decode_demo LLaMA2-7B 16 32 8
 *   ./build/examples/decode_demo LLaMA2-7B 16 32 8 0 static
 *
 * Prompts are synthesized deterministically, so generated streams are
 * bit-identical for any thread count, slot count, or batching mode —
 * and for any MSQ_KERNEL=scalar|sse2|avx2|neon SIMD-path override —
 * the demo prints one request's stream so runs can be diffed.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/msq_config.h"
#include "model/model_zoo.h"
#include "serve/decode.h"

using namespace msq;

int
main(int argc, char **argv)
{
    const std::string model_name = argc > 1 ? argv[1] : "TinyLM-decode";
    const size_t requests =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 12;
    const size_t max_new =
        argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 16;
    const size_t batch = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 8;
    if (argc > 5 && std::strtoul(argv[5], nullptr, 10) > 0)
        setThreadCount(
            static_cast<unsigned>(std::strtoul(argv[5], nullptr, 10)));
    const bool is_static = argc > 6 && std::strcmp(argv[6], "static") == 0;

    const ModelProfile &model = modelByName(model_name);
    if (!decodeCapable(model)) {
        std::fprintf(stderr,
                     "%s carries no attention geometry; decode-capable "
                     "profiles include TinyLM-decode and the LLM/VLM "
                     "transformers\n",
                     model.name.c_str());
        return 1;
    }
    MsqConfig qcfg;  // the paper's headline W2 setting

    DecodeConfig dcfg;
    dcfg.maxBatchSeqs = batch == 0 ? 1 : batch;
    dcfg.continuousBatching = !is_static;
    dcfg.kv = {2, 16, 16};

    std::printf("deploying %s as %s (packed-weight cache build)...\n",
                model.name.c_str(), qcfg.name().c_str());
    DecodeEngine engine(model, qcfg, dcfg);

    // Mixed-length prompts; a third of the requests generate 3x longer
    // so continuous batching has stragglers to refill around.
    for (size_t i = 0; i < requests; ++i) {
        Rng rng(7000 + i);
        std::vector<uint32_t> prompt(4 + i % 6);
        for (uint32_t &tok : prompt)
            tok = static_cast<uint32_t>(rng.uniformInt(dcfg.vocab));
        engine.submit(prompt, i % 3 == 0 ? 3 * max_new : max_new);
    }
    const DecodeReport rep = engine.run();

    Table t("decode_demo: " + model.name + ", " +
            std::to_string(requests) + " requests, " +
            (is_static ? "static" : "continuous") + " batching, " +
            std::to_string(threadCount()) + " threads");
    t.setHeader({"quantity", "value"});
    t.addRow({"transformer blocks",
              Table::fmtInt(static_cast<long long>(model.decode.blocks))});
    t.addRow({"scheduler steps",
              Table::fmtInt(static_cast<long long>(rep.steps))});
    t.addRow({"prompt tokens",
              Table::fmtInt(static_cast<long long>(rep.prefillTokens))});
    t.addRow({"generated tokens",
              Table::fmtInt(static_cast<long long>(rep.generatedTokens))});
    t.addRow({"mean active sequences", Table::fmt(rep.meanActiveSeqs, 2)});
    t.addRow({"prefill throughput (tok/s)",
              Table::fmt(rep.prefillTokensPerSec, 1)});
    t.addRow({"decode throughput (tok/s)",
              Table::fmt(rep.decodeTokensPerSec, 1)});
    t.addRow({"KV packed bytes",
              Table::fmtInt(static_cast<long long>(rep.kvPackedBytes))});
    t.addRow({"KV residual bytes",
              Table::fmtInt(static_cast<long long>(rep.kvFpBytes))});
    t.print();

    // Streams are schedule-independent; print a fixed request (the
    // first submitted — records arrive in retirement order, which DOES
    // depend on scheduling) so runs can be diffed.
    for (const GenRecord &rec : rep.requests) {
        if (rec.id != 1)
            continue;
        std::printf("\nrequest %llu (%zu prompt tokens) generated:",
                    static_cast<unsigned long long>(rec.id),
                    rec.promptTokens);
        for (uint32_t tok : rec.tokens)
            std::printf(" %u", tok);
        std::printf("\n");
    }
    return 0;
}
