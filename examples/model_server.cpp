/**
 * @file
 * Production-shaped serving entry point: deploy a decode-capable model
 * zoo profile behind the TCP streaming frontend and serve until
 * SIGTERM/SIGINT, then drain gracefully — every in-flight stream
 * finishes and flushes before the process exits (the zero-dropped-
 * token guarantee CI's loopback smoke exercises end to end).
 *
 * Usage:
 *   model_server [model] [port] [io-workers] [max-queue] [threads]
 *                [max-batch]
 *
 * e.g.
 *   ./build/examples/model_server TinyLM-decode 7531 &
 *   ./build/examples/model_client 7531
 *   kill -TERM %1        # graceful drain, exit 0 with 0 drops
 *
 * Port 0 binds an ephemeral port. Once bound, the process prints a
 * machine-scrapable `PORT <n>` line (flushed before anything else can
 * follow it) — the ReplicaSupervisor (src/cluster) forks this binary
 * with port 0 and scrapes that line, which also keeps net tests free
 * of fixed-port collisions. The wire protocol is src/net/frame.h; any
 * NetClient — or the model_client example — can talk to it.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/parallel.h"
#include "model/model_zoo.h"
#include "net/server.h"
#include "serve/decode.h"

using namespace msq;

namespace {

// Signal handlers may only touch lock-free sig_atomic_t state; the
// main loop polls it and runs the actual drain in normal context.
volatile std::sig_atomic_t g_shutdown = 0;

void
onSignal(int)
{
    g_shutdown = 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string model_name = argc > 1 ? argv[1] : "TinyLM-decode";
    const unsigned long port =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 0;
    const size_t io_workers =
        argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 2;
    const size_t max_queue =
        argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 16;
    if (argc > 5 && std::strtoul(argv[5], nullptr, 10) > 0)
        setThreadCount(
            static_cast<unsigned>(std::strtoul(argv[5], nullptr, 10)));
    const size_t max_batch =
        argc > 6 ? std::strtoul(argv[6], nullptr, 10) : 8;

    const ModelProfile &model = modelByName(model_name);
    if (!decodeCapable(model)) {
        std::fprintf(stderr, "%s carries no attention geometry\n",
                     model.name.c_str());
        return 1;
    }

    MsqConfig qcfg;
    qcfg.hessianCompensation = false;
    DecodeConfig dcfg;
    dcfg.maxBatchSeqs = max_batch > 0 ? max_batch : 8;
    dcfg.stepTokenBudget = 32;
    dcfg.prefillChunk = 8;
    dcfg.kv = {2, 8, 8};
    dcfg.vocab = 64;

    std::printf("deploying %s (%s)...\n", model.name.c_str(),
                qcfg.name().c_str());
    std::fflush(stdout);
    DecodeEngine engine(model, qcfg, dcfg);

    ServerConfig scfg;
    scfg.port = static_cast<uint16_t>(port);
    scfg.ioWorkers = io_workers;
    scfg.maxQueue = max_queue;
    ModelServer server(engine, scfg);
    if (!server.start()) {
        std::fprintf(stderr, "cannot bind port %lu\n", port);
        return 1;
    }
    // The scrapable line first, flushed on its own, so a supervisor
    // reading the pipe never has to parse past human-oriented output.
    std::printf("PORT %u\n", server.boundPort());
    std::fflush(stdout);
    std::printf("listening on 127.0.0.1:%u (vocab %zu, queue %zu, "
                "%zu io workers, batch %zu)\n",
                server.boundPort(), dcfg.vocab, max_queue, io_workers,
                dcfg.maxBatchSeqs);
    std::fflush(stdout);

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    while (!g_shutdown)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    std::printf("shutdown requested; draining...\n");
    std::fflush(stdout);
    const bool clean = server.drain();
    const ServerStats s = server.stats();
    std::printf("drained in %.1f ms: served %llu, streamed %llu "
                "tokens, dropped %llu, rejected %llu overloaded / "
                "%llu bad / %llu shutdown\n",
                s.drainMs,
                static_cast<unsigned long long>(s.requestsServed),
                static_cast<unsigned long long>(s.tokensStreamed),
                static_cast<unsigned long long>(s.droppedTokens),
                static_cast<unsigned long long>(s.rejectedOverloaded),
                static_cast<unsigned long long>(s.rejectedBadRequest),
                static_cast<unsigned long long>(s.rejectedShutdown));
    return clean ? 0 : 1;
}
