/**
 * @file
 * Accelerator example: quantize a layer, run the GEMM through the
 * bit-accurate functional model (multi-precision PEs + ReCoN), verify
 * against the reference computation, then estimate cycles and energy
 * with the performance model.
 */

#include <cmath>
#include <cstdio>

#include "accel/cycle_model.h"
#include "accel/energy.h"
#include "accel/functional.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/microscopiq.h"

using namespace msq;

int
main()
{
    Rng rng(7);
    const size_t k = 256, o = 512, tokens = 4;

    // Synthetic layer with ~2% outliers.
    Matrix w(k, o);
    for (size_t r = 0; r < k; ++r) {
        for (size_t c = 0; c < o; ++c) {
            double v = rng.gaussian(0.0, 0.02);
            if (rng.bernoulli(0.01))
                v = rng.uniform(0.15, 0.4) *
                    (rng.bernoulli(0.5) ? 1.0 : -1.0);
            w(r, c) = v;
        }
    }
    Matrix x(k, tokens);
    for (size_t r = 0; r < k; ++r)
        for (size_t t = 0; t < tokens; ++t)
            x(r, t) = rng.gaussian(0.0, 1.0);

    // Quantize and pack.
    MsqConfig qcfg;
    qcfg.inlierBits = 2;
    qcfg.hessianCompensation = false;
    MicroScopiQQuantizer quantizer(qcfg);
    const PackedLayer layer = quantizer.quantizePacked(w, Matrix());
    const QuantizedActs acts(x, 8, 128);

    // Bit-accurate execution.
    AccelConfig acfg;
    FunctionalAccelerator accel(acfg);
    const Matrix hw = accel.gemm(layer, acts);
    const Matrix ref = FunctionalAccelerator::referenceGemm(layer, acts);
    double max_err = 0.0;
    for (size_t m = 0; m < hw.rows(); ++m)
        for (size_t c = 0; c < hw.cols(); ++c)
            max_err = std::max(max_err, std::fabs(hw(m, c) - ref(m, c)));

    // Performance + energy estimate for the same shape.
    Workload wl;
    wl.tokens = tokens;
    wl.reduction = k;
    wl.outputs = o;
    wl.weightBits = 2;
    wl.ebw = layer.paperEbw();
    wl.microOutlierFrac = layer.outlierMicroBlockFraction();
    CycleModel model(acfg);
    Rng prng(1);
    const CycleStats stats = model.run(wl, prng);
    EnergyParams eparams;
    const EnergyBreakdown energy =
        computeEnergy(eparams, stats, 2, 1.0, acfg.clockGhz);

    Table t("MicroScopiQ accelerator GEMM (256 x 512, 4 tokens)");
    t.setHeader({"quantity", "value"});
    t.addRow({"functional vs reference max |err|",
              Table::fmt(max_err, 12)});
    t.addRow({"PE MACs executed", Table::fmtInt(
                  static_cast<long long>(accel.stats().macs))});
    t.addRow({"ReCoN transits", Table::fmtInt(static_cast<long long>(
                  accel.stats().reconTransits))});
    t.addRow({"ReCoN merges", Table::fmtInt(static_cast<long long>(
                  accel.stats().reconMerges))});
    t.addSeparator();
    t.addRow({"total cycles", Table::fmtInt(
                  static_cast<long long>(stats.totalCycles))});
    t.addRow({"ReCoN conflict rate",
              Table::fmt(100.0 * stats.conflictRate(), 2) + " %"});
    t.addRow({"DRAM traffic",
              Table::fmt(stats.traffic.dramBytes / 1024.0, 1) + " KiB"});
    t.addRow({"energy (model)",
              Table::fmt(energy.total() / 1e6, 3) + " uJ"});
    t.print();

    std::printf("\nThe functional datapath reproduced the reference GEMM "
                "to %.1e absolute error\n(float associativity only; the "
                "integer pipeline itself is exact).\n",
                max_err);
    return 0;
}
