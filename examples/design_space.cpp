/**
 * @file
 * Design-space exploration example: sweep PE array sizes and ReCoN
 * unit counts for a LLaMA-3-8B-scale decode workload, reporting
 * latency, conflict rate, compute area and compute density — the
 * trade-offs behind the paper's Figs. 16-18.
 */

#include "accel/area.h"
#include "accel/cycle_model.h"
#include "common/rng.h"
#include "common/table.h"
#include "gpu/gpu_model.h"
#include "model/model_zoo.h"

using namespace msq;

namespace {

/** Full-scale decode workloads of one transformer block. */
std::vector<Workload>
blockWorkloads(const ModelProfile &model, size_t tokens, unsigned bits)
{
    const size_t d = model.realHidden;
    std::vector<Workload> wls;
    for (const auto &[k, o] : std::initializer_list<std::pair<size_t, size_t>>{
             {d, d + d / 2}, {d, d}, {d, 4 * d}, {4 * d, d}}) {
        Workload wl;
        wl.tokens = tokens;
        wl.reduction = k;
        wl.outputs = o;
        wl.weightBits = bits;
        wl.ebw = bits == 2 ? 2.36 : 4.15;
        wl.microOutlierFrac = 0.09;
        wls.push_back(wl);
    }
    return wls;
}

} // namespace

int
main()
{
    const ModelProfile &model = modelByName("LLaMA3-8B");

    Table t("Design space: array size x ReCoN units "
            "(LLaMA3-8B block, 4-token decode, bb=2)");
    t.setHeader({"array", "ReCoN", "cycles/block", "conflicts",
                 "compute mm^2", "TOPS/mm^2"});
    for (size_t dim : {32u, 64u, 128u}) {
        for (size_t units : {1u, 2u, 8u}) {
            AccelConfig cfg;
            cfg.rows = dim;
            cfg.cols = dim;
            cfg.reconUnits = units;
            CycleModel cm(cfg);
            Rng rng(42);
            const CycleStats stats =
                cm.runAll(blockWorkloads(model, 4, 2), rng);
            const AreaBreakdown area =
                microScopiQArea(dim, dim, units, 0);
            t.addRow({std::to_string(dim) + "x" + std::to_string(dim),
                      std::to_string(units),
                      Table::fmtInt(static_cast<long long>(
                          stats.totalCycles)),
                      Table::fmt(100.0 * stats.conflictRate(), 2) + " %",
                      Table::fmt(area.computeAreaMm2(), 4),
                      Table::fmt(computeDensityTops(area, dim * dim, 2.0),
                                 1)});
        }
        t.addSeparator();
    }
    t.print();

    // GPU reference point for the same model (decode throughput).
    GpuConfig gpu;
    Table g("A100-class GPU reference (decode, tokens/s)");
    g.setHeader({"kernel", "tokens/s"});
    for (GpuKernel kernel :
         {GpuKernel::TrtLlmFp16, GpuKernel::AtomW4A4, GpuKernel::MsOptim,
          GpuKernel::MsModifiedTensorCore}) {
        const GpuRun run = runDecode(gpu, kernel, model.paramsB, 4.15);
        g.addRow({run.kernel, Table::fmt(run.tokensPerSec, 1)});
    }
    g.print();
    return 0;
}
