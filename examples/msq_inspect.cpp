/**
 * @file
 * Container introspection: dump an `.msq` file's header, per-layer
 * index, and (with --verify) the CRC status plus packing statistics of
 * every layer payload. Uses the lazy MsqReader, so plain inspection
 * reads only the prologue/header/index no matter how large the model
 * is; --verify additionally checksums and decodes each payload.
 *
 * Usage:
 *   msq_inspect <container.msq> [--verify]
 *
 * Exits 0 on a valid container, 1 (with the typed error) otherwise.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/table.h"
#include "io/msq_file.h"

using namespace msq;

namespace {

const char *
outlierModeName(OutlierMode mode)
{
    switch (mode) {
      case OutlierMode::None: return "none";
      case OutlierMode::MxFpShared: return "mxfp-shared";
      case OutlierMode::MxFpCoarse: return "mxfp-coarse";
      case OutlierMode::MxInt: return "mxint";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, "usage: msq_inspect <container.msq> "
                             "[--verify]\n");
        return 2;
    }
    const std::string path = argv[1];
    const bool verify = argc > 2 && std::strcmp(argv[2], "--verify") == 0;

    MsqReader reader;
    const IoResult res = reader.open(path);
    if (!res) {
        std::fprintf(stderr, "msq_inspect: %s: %s\n", ioCodeName(res.code),
                     res.message.c_str());
        return 1;
    }

    const MsqConfig &cfg = reader.config();
    std::printf("%s: .msq container, format v%u, %llu bytes\n",
                path.c_str(), kMsqFormatVersion,
                static_cast<unsigned long long>(reader.fileBytes()));
    std::printf("  model        %s\n", reader.model().c_str());
    std::printf("  method       %s\n", cfg.name().c_str());
    std::printf("  config       bb=%u B_M=%zu B_mu=%zu rB=%zu damp=%g "
                "outliers=%s%s%s%s\n",
                cfg.inlierBits, cfg.macroBlock, cfg.microBlock, cfg.rowBlock,
                cfg.dampRel, outlierModeName(cfg.outlierMode),
                cfg.prescaleOutliers ? " prescale" : "",
                cfg.pruneAndRedistribute ? " prune+redistribute" : "",
                cfg.hessianCompensation ? " hessian" : "");
    std::printf("  calibration  %llu tokens\n",
                static_cast<unsigned long long>(reader.calibTokens()));
    std::printf("  layers       %zu\n\n", reader.layerCount());

    Table t(verify ? "layer index (payloads verified)" : "layer index");
    if (verify)
        t.setHeader({"layer", "shape", "offset", "bytes", "crc32", "status",
                     "EBW", "outlier MiBs"});
    else
        t.setHeader({"layer", "shape", "offset", "bytes", "crc32"});

    bool all_ok = true;
    for (size_t li = 0; li < reader.layerCount(); ++li) {
        const MsqLayerInfo &info = reader.layerInfo(li);
        char shape[40], offset[24], bytes[24], crc[16];
        std::snprintf(shape, sizeof(shape), "%llu x %llu",
                      static_cast<unsigned long long>(info.rows),
                      static_cast<unsigned long long>(info.cols));
        std::snprintf(offset, sizeof(offset), "%llu",
                      static_cast<unsigned long long>(info.offset));
        std::snprintf(bytes, sizeof(bytes), "%llu",
                      static_cast<unsigned long long>(info.bytes));
        std::snprintf(crc, sizeof(crc), "%08x", info.crc);
        if (!verify) {
            t.addRow({info.name, shape, offset, bytes, crc});
            continue;
        }
        PackedLayer layer;
        const IoResult lres = reader.readLayer(li, layer);
        if (lres) {
            t.addRow({info.name, shape, offset, bytes, crc, "ok",
                      Table::fmt(layer.paperEbw(), 3),
                      Table::fmt(100.0 * layer.outlierMicroBlockFraction(),
                                 1) +
                          " %"});
        } else {
            all_ok = false;
            t.addRow({info.name, shape, offset, bytes, crc,
                      ioCodeName(lres.code), "-", "-"});
        }
    }
    t.print();

    if (verify && !all_ok) {
        std::fprintf(stderr, "msq_inspect: payload verification FAILED\n");
        return 1;
    }
    return 0;
}
